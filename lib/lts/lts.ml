module type STATE = sig
  type t

  val equal : t -> t -> bool
  val hash : t -> int
  val pp : Format.formatter -> t -> unit
end

module type LABEL = sig
  type t

  val equal : t -> t -> bool
  val hash : t -> int
  val pp : Format.formatter -> t -> unit
end

exception Too_many_states of int

(* What the engine knew when it raised {!Too_many_states}: the serve
   daemon reports observed bytes/state back to operators so they can
   size [--max-states] against real memory, not guesswork. Domain-local
   because explorations on different serve workers abort
   independently; the raise and the catch happen on the same domain. *)
type abort_stats = {
  ab_limit : int;
  ab_states : int;
  ab_transitions : int;
  ab_bytes_per_state : float option;
      (* [None] for the boxed engine, which has no byte-exact accounting *)
  ab_resident_bytes : int option;
      (* packed engine bytes still in RAM at abort *)
  ab_spill_bytes : int;  (* bytes evicted to disk at abort; 0 unspilled *)
  ab_mem_budget : int option;
      (* the effective resident budget, so operators can tell a
         RAM-capped abort from a disk-capped one *)
}

let abort_stats_key : abort_stats option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let last_abort_stats () = !(Domain.DLS.get abort_stats_key)
let record_abort st = Domain.DLS.get abort_stats_key := Some st

(* Byte accounting of a packed LTS, split by structure so benchmarks
   can show where the memory goes. *)
type mem_stats = {
  ms_states : int;
  ms_transitions : int;
  ms_state_bytes : int;  (** state-record arena (full + delta records) *)
  ms_edge_bytes : int;  (** flat (label id, dst) edge stream *)
  ms_index_bytes : int;  (** record offsets, depths, row table *)
  ms_dedup_bytes : int;  (** shard tables (RAM + spilled generations) *)
  ms_full_states : int;
  ms_delta_states : int;
  ms_labels : int;  (** distinct interned labels *)
  ms_total_bytes : int;  (** engine storage, resident + spilled *)
  ms_bytes_per_state : float;
  ms_resident_bytes : int;  (** total minus what was evicted to disk *)
  ms_spill_bytes : int;
  ms_spill_chunks : int;  (** arena chunks evicted *)
  ms_spill_tables : int;  (** dedup-shard generations written *)
  ms_spill_faults : int;  (** reads served back from disk *)
  ms_mem_budget : int option;
}

(* Spill occupancy of a packed LTS, for teardown checks and operator
   reports. *)
type spill_stats = {
  sp_dir : string;
  sp_bytes : int;
  sp_chunks : int;
  sp_tables : int;
  sp_faults : int;
  sp_budget : int;
}

(* A state codec for the packed engine: every reachable state of one
   model encodes to exactly [pk_words] payload words. [pk_decode] must
   be safe to call concurrently (the parallel explorer decodes on
   worker domains). Word-equality must coincide with [S.equal] on the
   states of one model — true for bitset-backed privacy configs, and
   the contract any other packer must honour. *)
type 'a packer = {
  pk_words : int;
  pk_blit : 'a -> int array -> int -> unit;
  pk_decode : int array -> int -> 'a;
}

module Make (S : STATE) (L : LABEL) = struct
  module Tbl = Hashtbl.Make (S)
  module Ltbl = Hashtbl.Make (L)
  module P = Packed_repr

  type state_id = int

  type transition = { src : state_id; label : L.t; dst : state_id }

  (* Per-state successor list as a growable flat array: appends are
     amortised O(1), iteration touches contiguous memory, and reading
     never allocates (the seed stored a reversed cons-list and paid a
     List.rev per [successors] call). *)
  type succs = { mutable arr : (L.t * state_id) array; mutable len : int }

  let new_succs () = { arr = [||]; len = 0 }

  let push_succ s entry =
    if s.len = Array.length s.arr then begin
      let cap = max 4 (2 * s.len) in
      let bigger = Array.make cap entry in
      Array.blit s.arr 0 bigger 0 s.len;
      s.arr <- bigger
    end;
    s.arr.(s.len) <- entry;
    s.len <- s.len + 1

  (* Out-degrees are tiny in generated privacy models, so a linear scan
     with a physical-equality fast path beats any hashing below this
     length; past it, a per-graph hash index keyed (src, label hash, dst)
     keeps duplicate detection O(1) (the seed scanned unconditionally,
     which is quadratic on high-fan-out states). *)
  let scan_threshold = 16

  (* ----- storage backends ----- *)

  (* Boxed: every state held as a materialised [S.t] in one hash-consing
     table — the PR 2 engine, kept both as the comparison baseline and
     as the backend for hand-built LTSs ([create]/[add_state]). *)
  type boxed = {
    ids : state_id Tbl.t;
    mutable data : S.t array;
    mutable out : succs array;
    dup : (int * int * int, L.t list) Hashtbl.t;
        (* (src, L.hash label, dst) -> labels with that hash; only
           consulted for sources whose out-degree exceeds
           [scan_threshold]. *)
  }

  (* Packed: a state is [pk_words] payload words, stored as a
     byte-granular record in a chunked arena — either patched against
     zero (a "full" record) or delta-encoded against its frontier
     parent when that is smaller. Dedup is [nshards] open-addressing
     tables partitioned by hash, probing by a hash tag first and
     word-comparing (one record decode) only on tag match. Labels are
     interned once; edges are varint rows, one per source, emitted as
     exploration expands each source exactly once: out-degree, then per
     edge a label-id varint and a zigzag varint of the destination
     relative to the previous one (the first relative to the source).
     BFS numbering makes consecutively discovered destinations
     adjacent, so most destination varints are a single byte and a
     typical edge costs 2-4 bytes against 48 for a boxed cons cell plus
     tuple. Transitions added after exploration (the pseudonym-risk
     pass) append to per-source int overflow rows.

     A finished exploration is sealed by [packed_compact]: side tables
     are trimmed to exact size and each dedup shard is rebuilt from its
     explore-time int entries (8 bytes, load <= 1/2 — sized for probe
     speed while millions of lookups are in flight) into a compact
     5-byte-entry table at load <= 0.85, since post-exploration lookups
     are rare. The retained bytes are what the serve cache holds on to,
     which is the number the mem_stats report. *)
  type shard = {
    mutable tbl : int array;
        (* explore-time entries: (tag30 lsl 32) lor (id + 1); 0 empty *)
    mutable ctbl : Bytes.t;
        (* sealed entries, 5-byte stride: u32 LE (id + 1) then one tag
           byte; empty until [seal_shard] *)
    mutable ccap : int;  (* sealed capacity in entries; 0 = not sealed *)
    mutable count : int;  (* total entries, young + sealed + spilled *)
    mutable young : int;  (* entries in [tbl] (not yet sealed/spilled) *)
    mutable gens : (int * int) list;
        (* spilled generations, newest first: (file offset, capacity) of
           a sealed 5-byte table in the shard spill file. LSM-style:
           under budget pressure the young table seals to a new
           generation and inserts restart in a fresh young table.
           Membership is the union over young + sealed + generations —
           a state lives in exactly one — so probing order cannot
           change any dedup verdict, which is what keeps numbering
           byte-identical for every budget. *)
  }

  type ov = { mutable oarr : int array; mutable olen : int }

  (* Live spill run of one packed LTS: two append-only files (evicted
     arena chunks; sealed dedup generations) under a private directory. *)
  type spill_state = {
    ss_spill : Spill.t;
    ss_arena : Spill.file;
    ss_shards : Spill.file;
    mutable ss_bytes : int;
    mutable ss_chunks : int;
    mutable ss_tables : int;
  }

  type packed = {
    pk : S.t packer;
    pstamp : int;  (* distinguishes this LTS in the domain decode cache *)
    arena : P.Arena.t;
    offs : P.U32.t;  (* state -> arena offset of its record *)
    depths : P.U8.t;  (* state -> delta-chain depth *)
    shards : shard array;
    mutable full_states : int;
    mutable delta_states : int;
    (* labels *)
    lbl_ids : int Ltbl.t;
    mutable lbl_data : L.t array;
    mutable nlabels : int;
    (* edges: varint rows in one growable byte buffer *)
    mutable ebytes : Bytes.t;
    mutable elen : int;
    row_start : P.U32.t;  (* state -> byte offset of its row, or row_none *)
    ov : (int, ov) Hashtbl.t;
    (* the open row of the state being expanded: (lid lsl 32) lor dst *)
    mutable rbuf : int array;
    mutable rlen : int;
    (* single-domain scratch: the sequential explorer, [add_state] and
       [find_state] reuse these; concurrent readers ([state_data] from
       analysis workers) allocate their own *)
    enc_buf : Bytes.t;
    cur : P.cursor;
    cand_buf : int array;
    cmp_buf : int array;
    (* spill tier: [budget] is the resident-byte ceiling; the run
       directory is created lazily on first eviction *)
    budget : int option;
    spill_dir : string option;
    mutable spill : spill_state option;
  }

  type repr = Boxed of boxed | Packed of packed

  (* Per-store reachability cone summaries (the region-granular
     invalidation down-payment): per label class — in generated models,
     the datastore index an action touches — how many states have an
     outgoing transition in that class and how many transitions carry
     it. Arrays are class-indexed and grown on demand; [cn_last]
     de-duplicates the per-state count without any per-state
     allocation (source ids arrive in nondecreasing order). *)
  type cones = {
    mutable cn_states : int array;
    mutable cn_trans : int array;
    mutable cn_last : int array;
    mutable cn_sources : Bytes.t array;
        (* Per-class bitset over source state ids: bit [src] set iff the
           state has at least one outgoing transition in that class.
           Grown on demand alongside the count arrays; this is what lets
           an incremental re-exploration seed its frontier from exactly
           the states a store's edits can touch. *)
  }

  type t = {
    repr : repr;
    mutable n : int;
    mutable ntrans : int;
    mutable init : state_id option;
    mutable preds : (state_id * L.t) list array option;
        (* Reverse index, built lazily by [predecessors]; dropped on any
           mutation. *)
    mutable cones : cones option;
  }

  let create () =
    {
      repr =
        Boxed
          { ids = Tbl.create 64; data = [||]; out = [||]; dup = Hashtbl.create 64 };
      n = 0;
      ntrans = 0;
      init = None;
      preds = None;
      cones = None;
    }

  let nshards = 64
  let shard_of h = h land (nshards - 1)
  let tag_of h = h lsr 32 (* 30 bits: hashes are 62-bit non-negative *)

  (* Sentinel [row_start] for states that have no edge row (created by
     [add_state] after exploration, or not yet expanded). *)
  let row_none = 0xffff_ffff

  (* Delta chains this deep cost a longer [decode_words] walk but cut
     the share of full records (the dominant state-arena cost) to a few
     percent; the wordmap keeps a chain level down to a few byte reads,
     and [depths] stays a byte table. *)
  let max_chain = 31

  let packed_stamps = Atomic.make 1

  let create_packed ?mem_budget ?spill_dir pk =
    if pk.pk_words > 63 then
      invalid_arg "Lts: packed states are limited to 63 words";
    {
      repr =
        Packed
          {
            pk;
            pstamp = Atomic.fetch_and_add packed_stamps 1;
            arena = P.Arena.create ();
            offs = P.U32.create ();
            depths = P.U8.create ();
            shards =
              Array.init nshards (fun _ ->
                  {
                    tbl = Array.make 64 0;
                    ctbl = Bytes.empty;
                    ccap = 0;
                    count = 0;
                    young = 0;
                    gens = [];
                  });
            full_states = 0;
            delta_states = 0;
            lbl_ids = Ltbl.create 64;
            lbl_data = [||];
            nlabels = 0;
            ebytes = Bytes.create 4096;
            elen = 0;
            row_start = P.U32.create ();
            ov = Hashtbl.create 16;
            rbuf = Array.make 16 0;
            rlen = 0;
            enc_buf = Bytes.create (32 + (10 * pk.pk_words));
            cur = P.cursor ();
            cand_buf = Array.make pk.pk_words 0;
            cmp_buf = Array.make pk.pk_words 0;
            budget = mem_budget;
            spill_dir;
            spill = None;
          };
      n = 0;
      ntrans = 0;
      init = None;
      preds = None;
      cones = None;
    }

  (* ----- packed primitives ----- *)

  let words_equal a b w =
    let rec go i = i = w || (Array.unsafe_get a i = Array.unsafe_get b i && go (i + 1)) in
    go 0

  (* Lowest set bit index of a non-zero word. *)
  let ntz v =
    let rec go k b = if b land 1 = 1 then k else go (k + 1) (b lsr 1) in
    go 0 v

  (* Per-domain decode cache: direct-mapped by state id, memoising
     decoded word vectors. Deep delta chains are what keep the arena
     small, but a raw chain walk per dedup probe is what would make
     them slow: siblings share a delta parent and dedup hits cluster on
     recent frontiers, so with every chain level cached on the way up,
     the typical decode is one key compare and a blit, or one patch
     apply on top of a cached parent. Domain-local (never shared, never
     locked); entries are keyed by the owning LTS's [pstamp] so
     interleaved decodes from several LTSs never cross-contaminate and
     switching costs nothing. Records are append-only and immutable,
     so entries never need invalidating. *)
  let cache_bits = 16
  let cache_slots = 1 lsl cache_bits

  (* Ids at or above this would collide with the stamp bits of the
     cache key; such states (impossible under the 4 GiB arena bound)
     simply bypass the cache. *)
  let cache_id_limit = 1 lsl 28

  type dcache = {
    mutable dc_wpw : int;  (* words per slot; -1 = unallocated *)
    mutable dc_keys : int array;  (* (pstamp lsl 28) lor id, or -1 *)
    mutable dc_words : int array;  (* cache_slots * dc_wpw *)
  }

  let dcache_key : dcache Domain.DLS.key =
    Domain.DLS.new_key (fun () ->
        { dc_wpw = -1; dc_keys = [||]; dc_words = [||] })

  let get_dcache p =
    let dc = Domain.DLS.get dcache_key in
    if dc.dc_wpw <> p.pk.pk_words then begin
      dc.dc_wpw <- p.pk.pk_words;
      dc.dc_keys <- Array.make cache_slots (-1);
      dc.dc_words <- Array.make (cache_slots * p.pk.pk_words) 0
    end;
    dc

  (* Drop the calling domain's cache: called when an LTS is sealed so
     retained memory is the packed structures alone. *)
  let drop_dcache () =
    let dc = Domain.DLS.get dcache_key in
    dc.dc_wpw <- -1;
    dc.dc_keys <- [||];
    dc.dc_words <- [||]

  (* Decode state [id]'s words into [buf]: walk the delta chain up to
     its full record (depth <= [max_chain]) or the nearest cached
     ancestor, then apply patches back down, caching each level. Each
     record carries a wordmap of the words it touches, so a chain level
     costs a handful of byte reads — most delta levels change one or
     two of the packed words. [cur] is caller-owned so concurrent
     decodes never race. *)
  let rec decode_rec p dc cur buf id =
    let w = p.pk.pk_words in
    let slot = id land (cache_slots - 1) in
    let key = (p.pstamp lsl 28) lor id in
    let cacheable = id < cache_id_limit && p.pstamp lsl 28 >= 0 in
    if cacheable && Array.unsafe_get dc.dc_keys slot = key then
      Array.blit dc.dc_words (slot * w) buf 0 w
    else begin
      P.Arena.seek p.arena cur (P.U32.get p.offs id);
      let tag = P.get_varint cur in
      if tag = 0 then begin
        let map = P.get_varint cur in
        Array.fill buf 0 w 0;
        let m = ref map in
        while !m <> 0 do
          let i = ntz !m in
          buf.(i) <- P.get_word_patch cur ~base:0;
          m := !m land (!m - 1)
        done
      end
      else begin
        let b = cur.P.b and pos = cur.P.pos in
        decode_rec p dc cur buf (tag - 1);
        cur.P.b <- b;
        cur.P.pos <- pos;
        let map = P.get_varint cur in
        let m = ref map in
        while !m <> 0 do
          let i = ntz !m in
          buf.(i) <- P.get_word_patch cur ~base:buf.(i);
          m := !m land (!m - 1)
        done
      end;
      if cacheable then begin
        Array.unsafe_set dc.dc_keys slot key;
        Array.blit buf 0 dc.dc_words (slot * w) w
      end
    end

  let decode_words p cur buf id = decode_rec p (get_dcache p) cur buf id

  let shard_grow sh =
    let old = sh.tbl in
    let cap = 2 * Array.length old in
    let mask = cap - 1 in
    let tbl = Array.make cap 0 in
    Array.iter
      (fun e ->
        if e <> 0 then begin
          let i = ref (e lsr 32 land mask) in
          while tbl.(!i) <> 0 do
            i := (!i + 1) land mask
          done;
          tbl.(!i) <- e
        end)
      old;
    sh.tbl <- tbl

  (* Sealed-shard slot and filter tag, both derived from the 30-bit tag
     so sealing can rebuild without rehashing any state: the slot takes
     the tag modulo the (arbitrary, exact-load) capacity, the filter
     byte bits 22-29 (an overlap only weakens the filter). *)
  let cslot tag cap = tag mod cap
  let ctag8 tag = (tag lsr 22) land 0xff

  (* Rebuild the explore-time int entries into the compact 5-byte form
     at a 0.85 load. The capacity is exact, not a power of two — pow2
     rounding would retain up to 2x the bytes (measured ~10.7 vs ~5.9
     bytes/state on a 14M-state case) — so probing is modulo; sealed
     probes only serve post-exploration lookups, where division cost
     is irrelevant. *)
  (* Rebuild the young int entries into a compact 5-byte table at 0.85
     load. Shared by the in-RAM seal and the spill path — both produce
     the same byte layout, probed by the same [cslot]/[ctag8]. *)
  let young_ctbl sh =
    let cap = max 16 ((sh.young * 20 / 17) + 1) in
    let ctbl = Bytes.make (5 * cap) '\000' in
    Array.iter
      (fun e ->
        if e <> 0 then begin
          let tag = e lsr 32 in
          let i = ref (cslot tag cap) in
          while Bytes.get_int32_le ctbl (5 * !i) <> 0l do
            incr i;
            if !i = cap then i := 0
          done;
          Bytes.set_int32_le ctbl (5 * !i) (Int32.of_int (e land 0xffff_ffff));
          Bytes.unsafe_set ctbl ((5 * !i) + 4) (Char.unsafe_chr (ctag8 tag))
        end)
      sh.tbl;
    (ctbl, cap)

  let seal_shard sh =
    let ctbl, cap = young_ctbl sh in
    sh.ctbl <- ctbl;
    sh.ccap <- cap;
    sh.tbl <- [||];
    sh.young <- 0

  (* Seal the young table into a new on-disk generation and restart
     young inserts from scratch. Entries keep their ids and tags, so
     later probes find exactly what they would have found in RAM. *)
  let spill_shard ss sh =
    if sh.young > 0 then begin
      let ctbl, cap = young_ctbl sh in
      let off = Spill.append ss.ss_shards ctbl ~pos:0 ~len:(5 * cap) in
      sh.gens <- (off, cap) :: sh.gens;
      ss.ss_bytes <- ss.ss_bytes + (5 * cap);
      ss.ss_tables <- ss.ss_tables + 1
    end;
    sh.tbl <- [||];
    sh.young <- 0

  let cshard_find p sh tag words cur buf =
    let cap = sh.ccap in
    let t8 = ctag8 tag in
    let i = ref (cslot tag cap) in
    let res = ref (-1) in
    (try
       while Bytes.get_int32_le sh.ctbl (5 * !i) <> 0l do
         if Char.code (Bytes.unsafe_get sh.ctbl ((5 * !i) + 4)) = t8 then begin
           let id =
             (Int32.to_int (Bytes.get_int32_le sh.ctbl (5 * !i))
             land 0xffff_ffff)
             - 1
           in
           decode_words p cur buf id;
           if words_equal words buf p.pk.pk_words then begin
             res := id;
             raise_notrace Exit
           end
         end;
         incr i;
         if !i = cap then i := 0
       done
     with Exit -> ());
    !res

  (* Probe the spilled generations, newest first, through the mapped
     view: same 5-byte entries, same modulo probe as [cshard_find]. *)
  let gshard_find p sh tag words cur buf =
    let sf = (Option.get p.spill).ss_shards in
    let t8 = ctag8 tag in
    let rec go = function
      | [] -> -1
      | (goff, cap) :: rest ->
        let i = ref (cslot tag cap) in
        let res = ref (-1) in
        (try
           let e = ref (Spill.entry5 sf ~off:(goff + (5 * !i))) in
           while !e land 0xffff_ffff <> 0 do
             if !e lsr 32 = t8 then begin
               let id = (!e land 0xffff_ffff) - 1 in
               decode_words p cur buf id;
               if words_equal words buf p.pk.pk_words then begin
                 res := id;
                 raise_notrace Exit
               end
             end;
             incr i;
             if !i = cap then i := 0;
             e := Spill.entry5 sf ~off:(goff + (5 * !i))
           done
         with Exit -> ());
        if !res >= 0 then !res else go rest
    in
    go sh.gens

  (* Find the id whose words equal [words], or -1. Probes by tag;
     decodes (into [buf]) only on tag match, so a probe is normally a
     handful of int compares. A state lives in exactly one of the young
     table, the sealed table and the spilled generations, so probe
     order is irrelevant to the verdict — young first is just the warm
     path. *)
  let shard_find p sh tag words cur buf =
    let res = ref (-1) in
    if sh.young > 0 then begin
      let mask = Array.length sh.tbl - 1 in
      let i = ref (tag land mask) in
      (try
         while sh.tbl.(!i) <> 0 do
           let e = sh.tbl.(!i) in
           if e lsr 32 = tag then begin
             let id = (e land 0xffff_ffff) - 1 in
             decode_words p cur buf id;
             if words_equal words buf p.pk.pk_words then begin
               res := id;
               raise_notrace Exit
             end
           end;
           i := (!i + 1) land mask
         done
       with Exit -> ())
    end;
    if !res < 0 && sh.ccap > 0 then res := cshard_find p sh tag words cur buf;
    if !res < 0 && sh.gens <> [] then res := gshard_find p sh tag words cur buf;
    !res

  (* Growing a sealed shard cannot re-derive slots from the stored tag
     byte, so it rehashes by decoding each entry's state. Only the rare
     post-exploration [add_state] path can trigger this. *)
  let cshard_grow p sh =
    let cap = 2 * sh.ccap in
    let ctbl = Bytes.make (5 * cap) '\000' in
    let cur = P.cursor () in
    let buf = Array.make p.pk.pk_words 0 in
    for j = 0 to sh.ccap - 1 do
      let e = Int32.to_int (Bytes.get_int32_le sh.ctbl (5 * j)) land 0xffff_ffff in
      if e <> 0 then begin
        decode_words p cur buf (e - 1);
        let tag = tag_of (P.hash_words buf p.pk.pk_words) in
        let i = ref (cslot tag cap) in
        while Bytes.get_int32_le ctbl (5 * !i) <> 0l do
          incr i;
          if !i = cap then i := 0
        done;
        Bytes.set_int32_le ctbl (5 * !i) (Int32.of_int e);
        Bytes.unsafe_set ctbl ((5 * !i) + 4) (Char.unsafe_chr (ctag8 tag))
      end
    done;
    sh.ctbl <- ctbl;
    sh.ccap <- cap

  (* Insert a known-absent id. Always goes to the young table when the
     shard is unsealed — spilled generations are immutable. *)
  let shard_insert p sh tag id =
    if sh.ccap > 0 then begin
      if 20 * (sh.count + 1) > 17 * sh.ccap then cshard_grow p sh;
      let cap = sh.ccap in
      let i = ref (cslot tag cap) in
      while Bytes.get_int32_le sh.ctbl (5 * !i) <> 0l do
        incr i;
        if !i = cap then i := 0
      done;
      Bytes.set_int32_le sh.ctbl (5 * !i) (Int32.of_int (id + 1));
      Bytes.unsafe_set sh.ctbl ((5 * !i) + 4) (Char.unsafe_chr (ctag8 tag));
      sh.count <- sh.count + 1
    end
    else begin
      if Array.length sh.tbl = 0 then sh.tbl <- Array.make 64 0
      else if 2 * (sh.young + 1) > Array.length sh.tbl then shard_grow sh;
      let mask = Array.length sh.tbl - 1 in
      let i = ref (tag land mask) in
      while sh.tbl.(!i) <> 0 do
        i := (!i + 1) land mask
      done;
      sh.tbl.(!i) <- (tag lsl 32) lor (id + 1);
      sh.count <- sh.count + 1;
      sh.young <- sh.young + 1
    end

  (* Append the record for [words]: delta against [parent] when the
     chain stays short and the patch bytes beat a full record. Both
     record kinds carry a wordmap (bit i = word i present) so untouched
     words cost nothing to store or decode. *)
  let encode_record p ~parent ~parent_words ~parent_depth words =
    let w = p.pk.pk_words in
    let full_map = ref 0 and full_size = ref 0 in
    for i = 0 to w - 1 do
      if words.(i) <> 0 then begin
        full_map := !full_map lor (1 lsl i);
        full_size := !full_size + P.word_patch_size ~base:0 words.(i)
      end
    done;
    let full_total = 1 + P.varint_size !full_map + !full_size in
    let delta_map = ref 0 in
    let delta_total =
      if parent < 0 || parent_depth >= max_chain then max_int
      else begin
        let s = ref 0 in
        for i = 0 to w - 1 do
          if words.(i) <> parent_words.(i) then begin
            delta_map := !delta_map lor (1 lsl i);
            s := !s + P.word_patch_size ~base:parent_words.(i) words.(i)
          end
        done;
        P.varint_size (parent + 1) + P.varint_size !delta_map + !s
      end
    in
    let b = p.enc_buf in
    let len, depth =
      if delta_total < full_total then begin
        let pos = ref (P.put_varint b 0 (parent + 1)) in
        pos := P.put_varint b !pos !delta_map;
        let m = ref !delta_map in
        while !m <> 0 do
          let i = ntz !m in
          pos := P.put_word_patch b !pos ~base:parent_words.(i) words.(i);
          m := !m land (!m - 1)
        done;
        p.delta_states <- p.delta_states + 1;
        (!pos, parent_depth + 1)
      end
      else begin
        let pos = ref (P.put_varint b 0 0) in
        pos := P.put_varint b !pos !full_map;
        let m = ref !full_map in
        while !m <> 0 do
          let i = ntz !m in
          pos := P.put_word_patch b !pos ~base:0 words.(i);
          m := !m land (!m - 1)
        done;
        p.full_states <- p.full_states + 1;
        (!pos, 0)
      end
    in
    (P.Arena.append p.arena b len, depth)

  (* Engine bytes currently in RAM: resident arena chunks, the edge
     buffer, the index tables and the dedup tables. Recomputed per
     budget check — a 64-shard fold is noise against the work between
     checks. *)
  let packed_resident p =
    P.Arena.resident_bytes p.arena
    + Bytes.length p.ebytes
    + P.U32.bytes p.offs + P.U32.bytes p.row_start + P.U8.bytes p.depths
    + Array.fold_left
        (fun a sh -> a + (8 * Array.length sh.tbl) + Bytes.length sh.ctbl)
        0 p.shards

  let ensure_spill p =
    match p.spill with
    | Some ss -> ss
    | None ->
      let sp = Spill.create ?dir:p.spill_dir () in
      let ss =
        {
          ss_spill = sp;
          ss_arena = Spill.file sp "arena.spill";
          ss_shards = Spill.file sp "shards.spill";
          ss_bytes = 0;
          ss_chunks = 0;
          ss_tables = 0;
        }
      in
      p.spill <- Some ss;
      (* The run dies with its LTS: when a cached artifact is evicted
         and collected, the finaliser (idempotent against the abort
         paths and the at_exit sweep) reclaims the directory. *)
      Gc.finalise (fun (_ : packed) -> Spill.remove sp) p;
      ss

  (* Don't seal shards below this many young entries: tiny generations
     would pile up and slow every probe for marginal RAM. *)
  let min_spill_young = 4096

  (* Enforce the resident budget: evict sealed arena chunks first
     (strictly oldest-first — that keeps the file offset of chunk i at
     i * chunk_size, and BFS-recent chunks, which delta decodes hit
     hardest, in RAM), then seal the largest young dedup tables to
     disk generations. Stops when nothing evictable remains: the edge
     buffer, index tables and open chunk are the unevictable floor. *)
  let spill_down p =
    match p.budget with
    | None -> ()
    | Some budget ->
      if packed_resident p > budget
         && (P.Arena.evictable p.arena > 0
             || Array.exists (fun sh -> sh.young >= min_spill_young) p.shards)
      then
        Mdp_obs.Metrics.span "phase/spill" @@ fun () ->
        let ss = ensure_spill p in
        while packed_resident p > budget && P.Arena.evictable p.arena > 0 do
          P.Arena.evict_chunk p.arena ss.ss_arena;
          ss.ss_chunks <- ss.ss_chunks + 1;
          ss.ss_bytes <- ss.ss_bytes + P.Arena.chunk_size
        done;
        let continue = ref true in
        while !continue && packed_resident p > budget do
          let best = ref (-1) and bestn = ref (min_spill_young - 1) in
          Array.iteri
            (fun i sh ->
              if sh.young > !bestn then begin
                best := i;
                bestn := sh.young
              end)
            p.shards;
          if !best < 0 then continue := false
          else spill_shard ss p.shards.(!best)
        done

  (* How many new states between two budget checks: growth between
     checks is bounded by a few hundred records plus one table
     doubling, all far below any sane budget's slack. *)
  let spill_check_batch = 512

  let packed_new_state t p ~parent ~parent_words ~parent_depth words h =
    let id = t.n in
    let off, depth = encode_record p ~parent ~parent_words ~parent_depth words in
    P.U32.set p.offs id off;
    P.U8.set p.depths id depth;
    P.U32.set p.row_start id row_none;
    shard_insert p p.shards.(shard_of h) (tag_of h) id;
    t.n <- id + 1;
    if t.n land (spill_check_batch - 1) = 0 then spill_down p;
    t.preds <- None;
    if t.init = None then t.init <- Some id;
    id

  (* Seal a finished exploration: trim every growable structure to what
     it actually holds (doubling leaves up to 2x slack) and rebuild the
     dedup shards in their compact form. Skipped on abort — an aborted
     LTS is discarded anyway. *)
  let packed_compact p n =
    if Bytes.length p.ebytes > p.elen then
      p.ebytes <- Bytes.sub p.ebytes 0 (max 1 p.elen);
    P.U32.trim p.offs n;
    P.U32.trim p.row_start n;
    P.U8.trim p.depths n;
    (match p.spill with
    | None -> Array.iter seal_shard p.shards
    | Some ss ->
      (* A spilled exploration seals every remaining young table to
         disk instead of to RAM — the retained footprint is what the
         serve cache holds, and post-exploration dedup probes are
         rare. *)
      Array.iter (fun sh -> spill_shard ss sh) p.shards);
    (* Re-enforce the budget on the sealed result: trims may not be
       enough when the run finished mid-growth. *)
    spill_down p;
    drop_dcache ()

  let intern p label =
    match Ltbl.find_opt p.lbl_ids label with
    | Some i -> i
    | None ->
      let i = p.nlabels in
      if i = Array.length p.lbl_data then begin
        let cap = max 16 (2 * i) in
        let bigger = Array.make cap label in
        Array.blit p.lbl_data 0 bigger 0 i;
        p.lbl_data <- bigger
      end;
      p.lbl_data.(i) <- label;
      p.nlabels <- i + 1;
      Ltbl.add p.lbl_ids label i;
      i

  (* Append an edge to the open row (scratch ints until the row is
     sealed by [close_row]). *)
  let push_edge p e =
    if p.rlen = Array.length p.rbuf then begin
      let cap = max 16 (2 * p.rlen) in
      let bigger = Array.make cap 0 in
      Array.blit p.rbuf 0 bigger 0 p.rlen;
      p.rbuf <- bigger
    end;
    p.rbuf.(p.rlen) <- e;
    p.rlen <- p.rlen + 1

  (* Any identical edge already in the open row? Edges are single ints,
     so the in-row duplicate check is an int scan. *)
  let row_contains p e =
    let rec go i = i < p.rlen && (p.rbuf.(i) = e || go (i + 1)) in
    go 0

  let ensure_ebytes p extra =
    if p.elen + extra > Bytes.length p.ebytes then begin
      let cap = max (p.elen + extra) (2 * Bytes.length p.ebytes) in
      let bigger = Bytes.create cap in
      Bytes.blit p.ebytes 0 bigger 0 p.elen;
      p.ebytes <- bigger
    end

  (* Encode the open row as [src]'s permanent varint row and reset the
     scratch. Must be called exactly once per expanded source, in
     discovery order for both explorers (which keeps the byte layout
     identical to the sequential engine's). *)
  let close_row p src =
    ensure_ebytes p ((10 * (p.rlen + 1)) + 10);
    let pos = ref (P.put_varint p.ebytes p.elen p.rlen) in
    let prev = ref src in
    for i = 0 to p.rlen - 1 do
      let e = p.rbuf.(i) in
      let dst = e land 0xffff_ffff in
      pos := P.put_varint p.ebytes !pos (e lsr 32);
      pos := P.put_varint p.ebytes !pos (P.zigzag (dst - !prev));
      prev := dst
    done;
    if !pos >= row_none then
      failwith "Mdp_lts: packed edge rows exceed the 4 GiB offset range";
    P.U32.set p.row_start src p.elen;
    p.elen <- !pos;
    p.rlen <- 0

  (* Decode the sealed row of [src] (overflow not included): calls
     [f lid dst] per edge in insertion order. *)
  let iter_row p src f =
    let rs = P.U32.get p.row_start src in
    if rs <> row_none then begin
      let cur = { P.b = p.ebytes; P.pos = rs } in
      let deg = P.get_varint cur in
      let prev = ref src in
      for _ = 1 to deg do
        let lid = P.get_varint cur in
        let dst = !prev + P.unzigzag (P.get_varint cur) in
        prev := dst;
        f lid dst
      done
    end

  let row_degree p src =
    let rs = P.U32.get p.row_start src in
    if rs = row_none then 0
    else begin
      let cur = { P.b = p.ebytes; P.pos = rs } in
      P.get_varint cur
    end

  let packed_mem p n ntrans =
    let state_bytes = P.Arena.bytes p.arena in
    let edge_bytes = Bytes.length p.ebytes in
    let index_bytes =
      P.U32.bytes p.offs + P.U32.bytes p.row_start + P.U8.bytes p.depths
    in
    let spill_bytes, spill_chunks, spill_tables, spill_faults =
      match p.spill with
      | None -> (0, 0, 0, 0)
      | Some ss ->
        (ss.ss_bytes, ss.ss_chunks, ss.ss_tables, Spill.faults ss.ss_spill)
    in
    (* spilled generations are dedup storage; evicted chunks are state
       storage already counted by [Arena.bytes] *)
    let gen_bytes = spill_bytes - (spill_chunks * P.Arena.chunk_size) in
    let dedup_bytes =
      gen_bytes
      + Array.fold_left
          (fun a sh ->
            a + (8 * Array.length sh.tbl) + Bytes.length sh.ctbl)
          0 p.shards
    in
    let total = state_bytes + edge_bytes + index_bytes + dedup_bytes in
    {
      ms_states = n;
      ms_transitions = ntrans;
      ms_state_bytes = state_bytes;
      ms_edge_bytes = edge_bytes;
      ms_index_bytes = index_bytes;
      ms_dedup_bytes = dedup_bytes;
      ms_full_states = p.full_states;
      ms_delta_states = p.delta_states;
      ms_labels = p.nlabels;
      ms_total_bytes = total;
      ms_bytes_per_state = float_of_int total /. float_of_int (max 1 n);
      ms_resident_bytes = total - spill_bytes;
      ms_spill_bytes = spill_bytes;
      ms_spill_chunks = spill_chunks;
      ms_spill_tables = spill_tables;
      ms_spill_faults = spill_faults;
      ms_mem_budget = p.budget;
    }

  let mem_stats t =
    match t.repr with
    | Boxed _ -> None
    | Packed p -> Some (packed_mem p t.n t.ntrans)

  let spill_stats t =
    match t.repr with
    | Boxed _ -> None
    | Packed p -> (
      match p.spill with
      | None -> None
      | Some ss ->
        Some
          {
            sp_dir = Spill.dir ss.ss_spill;
            sp_bytes = ss.ss_bytes;
            sp_chunks = ss.ss_chunks;
            sp_tables = ss.ss_tables;
            sp_faults = Spill.faults ss.ss_spill;
            sp_budget = Option.value p.budget ~default:0;
          })

  (* Release the disk tier early (tests, explicit teardown). Decoding a
     state whose chain touches a spilled chunk afterwards fails, so
     only call this when the LTS is done with. *)
  let drop_spill t =
    match t.repr with
    | Packed { spill = Some ss; _ } -> Spill.remove ss.ss_spill
    | _ -> ()

  (* ----- store cones ----- *)

  let new_cones () =
    { cn_states = [||]; cn_trans = [||]; cn_last = [||]; cn_sources = [||] }

  let cone_ensure c cls =
    if cls >= Array.length c.cn_states then begin
      let cap = max (cls + 1) (max 4 (2 * Array.length c.cn_states)) in
      let grow a fill =
        let b = Array.make cap fill in
        Array.blit a 0 b 0 (Array.length a);
        b
      in
      c.cn_states <- grow c.cn_states 0;
      c.cn_trans <- grow c.cn_trans 0;
      c.cn_last <- grow c.cn_last (-1);
      let srcs = Array.make cap Bytes.empty in
      Array.blit c.cn_sources 0 srcs 0 (Array.length c.cn_sources);
      c.cn_sources <- srcs
    end

  (* Set bit [src] in the class's source bitset, growing it
     geometrically (byte-granular, so 10M states cost 1.25 MB/class). *)
  let cone_mark_source c cls src =
    let bs = c.cn_sources.(cls) in
    let need = (src lsr 3) + 1 in
    let bs =
      if Bytes.length bs >= need then bs
      else begin
        let nb = Bytes.make (max need (max 64 (2 * Bytes.length bs))) '\000' in
        Bytes.blit bs 0 nb 0 (Bytes.length bs);
        c.cn_sources.(cls) <- nb;
        nb
      end
    in
    let byte = src lsr 3 in
    Bytes.unsafe_set bs byte
      (Char.unsafe_chr
         (Char.code (Bytes.unsafe_get bs byte) lor (1 lsl (src land 7))))

  (* Record one added transition out of [src] in class [cls] (< 0 =
     unclassified, not recorded). Sources arrive in nondecreasing order
     during exploration, so [cn_last] dedups the per-state count with
     one compare. *)
  let cone_touch t cls src =
    if cls >= 0 then
      match t.cones with
      | None -> ()
      | Some c ->
        cone_ensure c cls;
        c.cn_trans.(cls) <- c.cn_trans.(cls) + 1;
        if c.cn_last.(cls) <> src then begin
          c.cn_last.(cls) <- src;
          c.cn_states.(cls) <- c.cn_states.(cls) + 1;
          cone_mark_source c cls src
        end

  let store_cone_stats t =
    match t.cones with
    | None -> None
    | Some c ->
      (* Trim the geometric growth slack: report up to the highest
         class actually touched. *)
      let len = ref 0 in
      Array.iteri (fun i last -> if last >= 0 then len := i + 1) c.cn_last;
      Some (Array.init !len (fun i -> (c.cn_states.(i), c.cn_trans.(i))))

  let cone_sources t cls =
    match t.cones with
    | None -> None
    | Some c ->
      if cls < 0 || cls >= Array.length c.cn_sources then Some [||]
      else begin
        let bs = c.cn_sources.(cls) in
        let out = Array.make c.cn_states.(cls) 0 in
        let k = ref 0 in
        for byte = 0 to Bytes.length bs - 1 do
          let v = Char.code (Bytes.unsafe_get bs byte) in
          if v <> 0 then
            for bit = 0 to 7 do
              if v land (1 lsl bit) <> 0 then begin
                out.(!k) <- (byte lsl 3) lor bit;
                incr k
              end
            done
        done;
        Some (if !k = Array.length out then out else Array.sub out 0 !k)
      end


  (* ----- construction ----- *)

  let grow_boxed t b =
    if t.n >= Array.length b.data then begin
      let cap = max 16 (2 * Array.length b.data) in
      let data = Array.make cap b.data.(0) in
      Array.blit b.data 0 data 0 t.n;
      b.data <- data;
      let out = Array.make cap b.out.(0) in
      Array.blit b.out 0 out 0 t.n;
      b.out <- out
    end

  let add_state t s =
    match t.repr with
    | Boxed b -> (
      match Tbl.find_opt b.ids s with
      | Some id -> id
      | None ->
        let id = t.n in
        if id = 0 then begin
          b.data <- Array.make 16 s;
          b.out <- Array.init 16 (fun _ -> new_succs ())
        end
        else grow_boxed t b;
        b.data.(id) <- s;
        b.out.(id) <- new_succs ();
        t.n <- id + 1;
        Tbl.add b.ids s id;
        t.preds <- None;
        if t.init = None then t.init <- Some id;
        id)
    | Packed p ->
      p.pk.pk_blit s p.cand_buf 0;
      let h = P.hash_words p.cand_buf p.pk.pk_words in
      let id =
        shard_find p p.shards.(shard_of h) (tag_of h) p.cand_buf p.cur p.cmp_buf
      in
      if id >= 0 then id
      else
        packed_new_state t p ~parent:(-1) ~parent_words:[||] ~parent_depth:0
          p.cand_buf h

  let set_initial t id =
    if id < 0 || id >= t.n then invalid_arg "Lts.set_initial";
    t.init <- Some id

  let initial t =
    match t.init with
    | Some id -> id
    | None -> invalid_arg "Lts.initial: empty LTS"

  let num_states t = t.n
  let num_transitions t = t.ntrans

  let state_data t id =
    if id < 0 || id >= t.n then invalid_arg "Lts.state_data";
    match t.repr with
    | Boxed b -> b.data.(id)
    | Packed p ->
      (* Fresh cursor and buffer: analyses may decode from several
         domains at once. *)
      let cur = P.cursor () in
      let buf = Array.make p.pk.pk_words 0 in
      decode_words p cur buf id;
      p.pk.pk_decode buf 0

  let find_state t s =
    match t.repr with
    | Boxed b -> Tbl.find_opt b.ids s
    | Packed p ->
      p.pk.pk_blit s p.cand_buf 0;
      let h = P.hash_words p.cand_buf p.pk.pk_words in
      let id =
        shard_find p p.shards.(shard_of h) (tag_of h) p.cand_buf p.cur p.cmp_buf
      in
      if id >= 0 then Some id else None

  (* A lookup closure with private scratch buffers: [find_state] on the
     packed backend reuses shared encode/compare buffers and is not safe
     to call from several domains at once; finders are. *)
  let make_finder t =
    match t.repr with
    | Boxed b -> fun s -> Tbl.find_opt b.ids s
    | Packed p ->
      let cand = Array.make p.pk.pk_words 0 in
      let cmp = Array.make p.pk.pk_words 0 in
      let cur = P.cursor () in
      fun s ->
        p.pk.pk_blit s cand 0;
        let h = P.hash_words cand p.pk.pk_words in
        let id = shard_find p p.shards.(shard_of h) (tag_of h) cand cur cmp in
        if id >= 0 then Some id else None

  (* Label-id access for the incremental cone walk: on a packed LTS
     labels are interned, so a per-candidate verdict ("does this label
     change under the edit?") can be computed once per distinct label
     and row scans reduce to one array index per transition. Boxed
     LTSs have no label table — [None] sends callers down the
     per-label structural path. *)
  let interned_labels t =
    match t.repr with
    | Boxed _ -> None
    | Packed p -> Some (Array.sub p.lbl_data 0 p.nlabels)

  let iter_successors_lid t id f =
    if id < 0 || id >= t.n then invalid_arg "Lts.iter_successors_lid";
    match t.repr with
    | Boxed _ -> invalid_arg "Lts.iter_successors_lid: boxed LTS"
    | Packed p ->
      iter_row p id f;
      (match Hashtbl.find_opt p.ov id with
      | None -> ()
      | Some o ->
        for i = 0 to o.olen - 1 do
          let e = o.oarr.(i) in
          f (e lsr 32) (e land 0xffff_ffff)
        done)

  let states t = List.init t.n Fun.id

  let iter_states t f =
    for i = 0 to t.n - 1 do
      f i
    done

  let fold_states t f init =
    let acc = ref init in
    for i = 0 to t.n - 1 do
      acc := f !acc i
    done;
    !acc

  (* Raise the state guard with context attached for the caller's error
     report (the boxed engine has no byte-exact accounting, so
     bytes/state is [None] there). *)
  let too_many t limit =
    let bps, resident, spill_bytes, budget =
      match t.repr with
      | Boxed _ -> (None, None, 0, None)
      | Packed p ->
        let ms = packed_mem p t.n t.ntrans in
        ( Some ms.ms_bytes_per_state,
          Some ms.ms_resident_bytes,
          ms.ms_spill_bytes,
          p.budget )
    in
    record_abort
      {
        ab_limit = limit;
        ab_states = t.n;
        ab_transitions = t.ntrans;
        ab_bytes_per_state = bps;
        ab_resident_bytes = resident;
        ab_spill_bytes = spill_bytes;
        ab_mem_budget = budget;
      };
    raise (Too_many_states limit)

  (* ----- successor access ----- *)

  let iter_successors t id f =
    if id < 0 || id >= t.n then invalid_arg "Lts.iter_successors";
    match t.repr with
    | Boxed b ->
      let s = b.out.(id) in
      for i = 0 to s.len - 1 do
        let label, dst = s.arr.(i) in
        f label dst
      done
    | Packed p ->
      iter_row p id (fun lid dst -> f p.lbl_data.(lid) dst);
      (match Hashtbl.find_opt p.ov id with
      | None -> ()
      | Some o ->
        for i = 0 to o.olen - 1 do
          let e = o.oarr.(i) in
          f p.lbl_data.(e lsr 32) (e land 0xffff_ffff)
        done)

  let successors t id =
    let acc = ref [] in
    iter_successors t id (fun label dst -> acc := (label, dst) :: !acc);
    List.rev !acc

  (* Positional successor access for the iterative graph walks below:
     no closure allocation, resumable mid-row. *)
  let out_degree t id =
    match t.repr with
    | Boxed b -> b.out.(id).len
    | Packed p ->
      row_degree p id
      + (match Hashtbl.find_opt p.ov id with None -> 0 | Some o -> o.olen)

  (* O(row) for the packed backend: the varint row has no random
     access. Row degrees in generated models are bounded by the flow
     count, so the graph walks below stay effectively linear. *)
  let nth_dst t id i =
    match t.repr with
    | Boxed b -> snd b.out.(id).arr.(i)
    | Packed p ->
      let rs = P.U32.get p.row_start id in
      let remaining = ref i in
      let found = ref (-1) in
      if rs <> row_none then begin
        let cur = { P.b = p.ebytes; P.pos = rs } in
        let deg = P.get_varint cur in
        let prev = ref id in
        (try
           for _ = 1 to deg do
             let _lid = P.get_varint cur in
             let dst = !prev + P.unzigzag (P.get_varint cur) in
             prev := dst;
             if !remaining = 0 then begin
               found := dst;
               raise_notrace Exit
             end;
             decr remaining
           done
         with Exit -> ())
      end;
      if !found >= 0 then !found
      else
        (Option.get (Hashtbl.find_opt p.ov id)).oarr.(!remaining)
        land 0xffff_ffff

  let scan_dup s label dst =
    let rec go i =
      i < s.len
      &&
      let l, d = s.arr.(i) in
      (d = dst && L.equal l label) || go (i + 1)
    in
    go 0

  let index_succs b src =
    let s = b.out.(src) in
    for i = 0 to s.len - 1 do
      let label, dst = s.arr.(i) in
      let key = (src, L.hash label, dst) in
      let bucket = Option.value (Hashtbl.find_opt b.dup key) ~default:[] in
      Hashtbl.replace b.dup key (label :: bucket)
    done

  let add_transition t ~src ~label ~dst =
    if src < 0 || src >= t.n || dst < 0 || dst >= t.n then
      invalid_arg "Lts.add_transition";
    match t.repr with
    | Boxed b ->
      let s = b.out.(src) in
      let duplicate =
        if s.len < scan_threshold then scan_dup s label dst
        else begin
          (* Crossing the threshold: index the transitions inserted while
             scanning was still cheaper. *)
          if s.len = scan_threshold then index_succs b src;
          let key = (src, L.hash label, dst) in
          let bucket = Option.value (Hashtbl.find_opt b.dup key) ~default:[] in
          if List.exists (L.equal label) bucket then true
          else begin
            Hashtbl.replace b.dup key (label :: bucket);
            false
          end
        end
      in
      if duplicate then false
      else begin
        push_succ s (label, dst);
        t.ntrans <- t.ntrans + 1;
        t.preds <- None;
        true
      end
    | Packed p ->
      (* Interning makes equal labels share one id, so duplicate
         detection is an integer scan over the decoded row plus the
         overflow. *)
      let lid = intern p label in
      let e = (lid lsl 32) lor dst in
      let in_row =
        let hit = ref false in
        iter_row p src (fun l d -> if l = lid && d = dst then hit := true);
        !hit
      in
      let o =
        match Hashtbl.find_opt p.ov src with
        | Some o -> o
        | None ->
          let o = { oarr = [||]; olen = 0 } in
          Hashtbl.add p.ov src o;
          o
      in
      let in_ov =
        let rec go i = i < o.olen && (o.oarr.(i) = e || go (i + 1)) in
        go 0
      in
      if in_row || in_ov then false
      else begin
        if o.olen = Array.length o.oarr then begin
          let cap = max 4 (2 * o.olen) in
          let bigger = Array.make cap 0 in
          Array.blit o.oarr 0 bigger 0 o.olen;
          o.oarr <- bigger
        end;
        o.oarr.(o.olen) <- e;
        o.olen <- o.olen + 1;
        t.ntrans <- t.ntrans + 1;
        t.preds <- None;
        true
      end

  let iter_transitions t f =
    for src = 0 to t.n - 1 do
      iter_successors t src (fun label dst -> f { src; label; dst })
    done

  (* Recompute cone summaries (counts + source bitsets) from the stored
     transitions — used after an incremental rebuild so the fresh LTS
     supports further cone-scoped edits. Sources are visited in
     nondecreasing order here, which is what [cone_touch] needs for its
     one-compare per-state dedup. *)
  let rebuild_cones t classify =
    t.cones <- Some (new_cones ());
    for src = 0 to t.n - 1 do
      iter_successors t src (fun label _dst -> cone_touch t (classify label) src)
    done

  let transitions t =
    let acc = ref [] in
    iter_transitions t (fun tr -> acc := tr :: !acc);
    List.rev !acc

  let predecessors t id =
    if id < 0 || id >= t.n then invalid_arg "Lts.predecessors";
    let index =
      match t.preds with
      | Some p -> p
      | None ->
        let p = Array.make (max t.n 1) [] in
        (* Reverse iteration so each list ends up in transition-iteration
           order, matching the seed's semantics: successors are
           collected forward, then prepended last-first. *)
        for src = t.n - 1 downto 0 do
          let rev = ref [] in
          iter_successors t src (fun label dst -> rev := (label, dst) :: !rev);
          List.iter (fun (label, dst) -> p.(dst) <- (src, label) :: p.(dst)) !rev
        done;
        t.preds <- Some p;
        p
    in
    index.(id)

  let rebuild_dup b t =
    Hashtbl.reset b.dup;
    iter_transitions t (fun { src; label; dst } ->
        let key = (src, L.hash label, dst) in
        let bucket = Option.value (Hashtbl.find_opt b.dup key) ~default:[] in
        Hashtbl.replace b.dup key (label :: bucket))

  let map_labels t f =
    (match t.repr with
    | Boxed b ->
      for src = 0 to t.n - 1 do
        let s = b.out.(src) in
        for i = 0 to s.len - 1 do
          let label, dst = s.arr.(i) in
          s.arr.(i) <- (f { src; label; dst }, dst)
        done
      done;
      rebuild_dup b t
    | Packed p ->
      (* Mapped labels can intern to wider varints, so rows are
         re-encoded into a fresh buffer rather than patched in place.
         One pass, O(edge bytes). *)
      let old_ebytes = p.ebytes and old_elen = p.elen in
      p.ebytes <- Bytes.create (max 4096 old_elen);
      p.elen <- 0;
      for src = 0 to t.n - 1 do
        let rs = P.U32.get p.row_start src in
        if rs <> row_none then begin
          p.rlen <- 0;
          let cur = { P.b = old_ebytes; P.pos = rs } in
          let deg = P.get_varint cur in
          let prev = ref src in
          for _ = 1 to deg do
            let lid = P.get_varint cur in
            let dst = !prev + P.unzigzag (P.get_varint cur) in
            prev := dst;
            let lid' =
              intern p (f { src; label = p.lbl_data.(lid); dst })
            in
            push_edge p ((lid' lsl 32) lor dst)
          done;
          close_row p src
        end;
        match Hashtbl.find_opt p.ov src with
        | None -> ()
        | Some o ->
          for i = 0 to o.olen - 1 do
            let e = o.oarr.(i) in
            let dst = e land 0xffff_ffff in
            let lid = intern p (f { src; label = p.lbl_data.(e lsr 32); dst }) in
            o.oarr.(i) <- (lid lsl 32) lor dst
          done
      done;
      if Bytes.length p.ebytes > p.elen then
        p.ebytes <- Bytes.sub p.ebytes 0 (max 1 p.elen));
    t.preds <- None

  let reachable t =
    if t.n = 0 then []
    else begin
      let seen = Array.make t.n false in
      let order = ref [] in
      let q = Queue.create () in
      let start = initial t in
      seen.(start) <- true;
      Queue.push start q;
      while not (Queue.is_empty q) do
        let s = Queue.pop q in
        order := s :: !order;
        iter_successors t s (fun _ d ->
            if not seen.(d) then begin
              seen.(d) <- true;
              Queue.push d q
            end)
      done;
      List.rev !order
    end

  let is_deterministic t =
    let ok = ref true in
    for s = 0 to t.n - 1 do
      let labels = List.map fst (successors t s) in
      let rec dup = function
        | [] -> false
        | l :: rest -> List.exists (L.equal l) rest || dup rest
      in
      if dup labels then ok := false
    done;
    !ok

  let is_acyclic t =
    (* Iterative colouring (0 unvisited, 1 on stack, 2 done): no OCaml
       stack frame per state, so deep chains cannot overflow. *)
    let colour = Array.make (max t.n 1) 0 in
    let ok = ref true in
    let stack = ref [] in
    for root = 0 to t.n - 1 do
      if !ok && colour.(root) = 0 then begin
        colour.(root) <- 1;
        stack := [ (root, 0) ];
        while !ok && !stack <> [] do
          match !stack with
          | [] -> ()
          | (s, i) :: rest ->
            if i >= out_degree t s then begin
              colour.(s) <- 2;
              stack := rest
            end
            else begin
              stack := (s, i + 1) :: rest;
              let d = nth_dst t s i in
              if colour.(d) = 1 then ok := false
              else if colour.(d) = 0 then begin
                colour.(d) <- 1;
                stack := (d, 0) :: !stack
              end
            end
        done
      end
    done;
    !ok

  (* ----- exploration ----- *)

  (* How many sequential expansions happen between two cancellation
     polls: a poll is an atomic read plus (with a deadline) a clock
     read, so probing per state would be measurable on million-state
     runs while probing per batch keeps the reaction bound tight. *)
  let cancel_poll_batch = 512

  let poll_cancel = function
    | None -> ()
    | Some c -> Mdp_obs.Cancel.check c

  let boxed_exn t =
    match t.repr with Boxed b -> b | Packed _ -> assert false

  let explore_sequential t ~max_states ~cancel ~cone ~step =
    let b = boxed_exn t in
    (* Dedup hits/misses are batched in local refs and published once:
       a Metrics.add per transition would dominate small models. *)
    let hits = ref 0 and misses = ref 0 in
    let expanded = ref 0 in
    let q = Queue.create () in
    Queue.push (initial t) q;
    Fun.protect ~finally:(fun () ->
        Mdp_obs.Metrics.add "lts/dedup_hits" !hits;
        Mdp_obs.Metrics.add "lts/dedup_misses" !misses;
        Mdp_obs.Metrics.incr "lts/seq_explores")
    @@ fun () ->
    while not (Queue.is_empty q) do
      (* Poll on the first expansion too: a token fired before the run
         starts must stop it before any real work, also on models far
         smaller than the batch. *)
      if !expanded land (cancel_poll_batch - 1) = 0 then poll_cancel cancel;
      incr expanded;
      let src = Queue.pop q in
      List.iter
        (fun (label, dst_data) ->
          let before = t.n in
          let dst = add_state t dst_data in
          if t.n > max_states then too_many t max_states;
          let added = add_transition t ~src ~label ~dst in
          (match cone with
          | None -> ()
          | Some classify -> if added then cone_touch t (classify label) src);
          if t.n > before then begin
            incr misses;
            Queue.push dst q
          end
          else incr hits)
        (step b.data.(src))
    done

  (* Frontier-synchronised BFS: every state of the current frontier is
     expanded (possibly in parallel), then the results are merged
     sequentially in frontier order. Because the sequential queue BFS
     also processes states in discovery order, the merged LTS — state
     numbering, transition order, everything — is identical for every
     job count. [step] must be pure: it runs concurrently on multiple
     domains against shared immutable inputs.

     Frontiers narrower than [par_threshold] are expanded on the
     calling domain: spawn/join costs dwarf the expansion work there,
     and small models (every frontier narrow) would otherwise run
     slower under [jobs > 1] than sequentially. *)
  let explore_parallel t ~max_states ~cancel ~cone ~step ~jobs ~par_threshold =
    let b = boxed_exn t in
    let hits = ref 0 and misses = ref 0 in
    let rounds = ref 0 and par_rounds = ref 0 and seq_rounds = ref 0 in
    let frontier = ref [ initial t ] in
    Fun.protect ~finally:(fun () ->
        Mdp_obs.Metrics.add "lts/dedup_hits" !hits;
        Mdp_obs.Metrics.add "lts/dedup_misses" !misses;
        Mdp_obs.Metrics.add "lts/frontier_rounds" !rounds;
        Mdp_obs.Metrics.add "lts/par_rounds" !par_rounds;
        Mdp_obs.Metrics.add "lts/seq_fallback_rounds" !seq_rounds)
    @@ fun () ->
    while !frontier <> [] do
      (* Polled once per frontier round, on the calling domain only, so
         a fired token stops the exploration within one round without
         any worker domain ever raising mid-chunk (the spawned chunks
         of the current round always run to completion and are
         joined). *)
      poll_cancel cancel;
      let fr = Array.of_list !frontier in
      let nf = Array.length fr in
      incr rounds;
      Mdp_obs.Metrics.observe "lts/frontier_width" nf;
      let results = Array.make nf [] in
      let expand lo hi =
        for i = lo to hi - 1 do
          results.(i) <- step b.data.(fr.(i))
        done
      in
      let njobs = max 1 (min jobs nf) in
      if njobs = 1 || nf < par_threshold then begin
        incr seq_rounds;
        expand 0 nf
      end
      else begin
        incr par_rounds;
        Mdp_prelude.Parallel.iter_chunks ~jobs:njobs nf expand
      end;
      let next = ref [] in
      for i = 0 to nf - 1 do
        let src = fr.(i) in
        List.iter
          (fun (label, dst_data) ->
            let before = t.n in
            let dst = add_state t dst_data in
            if t.n > max_states then too_many t max_states;
            let added = add_transition t ~src ~label ~dst in
            (match cone with
            | None -> ()
            | Some classify -> if added then cone_touch t (classify label) src);
            if t.n > before then begin
              incr misses;
              next := dst :: !next
            end
            else incr hits)
          results.(i)
      done;
      frontier := List.rev !next
    done

  (* Per-exploration cache of label id -> cone class: the classifier
     runs once per interned label instead of once per transition.
     Stored as class + 2 so 0 reads as "not yet classified" (classes
     start at -1 = no store). Without a classifier this is a constant
     [min_int], which [cone_touch] drops on its sign check. *)
  let lid_classifier cone =
    match cone with
    | None -> fun _ _ -> min_int
    | Some classify ->
      let cache = ref [||] in
      fun lid label ->
        let n = Array.length !cache in
        if lid >= n then begin
          let cap = max (lid + 1) (max 16 (2 * n)) in
          let bigger = Array.make cap 0 in
          Array.blit !cache 0 bigger 0 n;
          cache := bigger
        end;
        let v = !cache.(lid) in
        if v <> 0 then v - 2
        else begin
          let c = classify label in
          !cache.(lid) <- c + 2;
          c
        end

  (* Packed sequential BFS. Discovery order — hence state numbering and
     transition order — is identical to [explore_sequential]: same
     queue discipline, and word-equality dedup coincides with [S.equal]
     (the packer contract). *)
  let packed_explore_seq t p ~max_states ~cancel ~cone ~step =
    let class_of = lid_classifier cone in
    let w = p.pk.pk_words in
    let hits = ref 0 and misses = ref 0 in
    let expanded = ref 0 in
    let q = Queue.create () in
    Queue.push (initial t) q;
    let parent_buf = Array.make w 0 in
    Fun.protect ~finally:(fun () ->
        Mdp_obs.Metrics.add "lts/dedup_hits" !hits;
        Mdp_obs.Metrics.add "lts/dedup_misses" !misses;
        Mdp_obs.Metrics.incr "lts/seq_explores")
    @@ fun () ->
    while not (Queue.is_empty q) do
      if !expanded land (cancel_poll_batch - 1) = 0 then begin
        poll_cancel cancel;
        (* Spill on the expansion batch too: edge rows and dedup tables
           grow even through rounds that discover few states, so the
           per-new-state check alone could lag the budget. *)
        spill_down p
      end;
      incr expanded;
      let src = Queue.pop q in
      decode_words p p.cur parent_buf src;
      let src_depth = P.U8.get p.depths src in
      let cfg = p.pk.pk_decode parent_buf 0 in
      p.rlen <- 0;
      List.iter
        (fun (label, dst_data) ->
          p.pk.pk_blit dst_data p.cand_buf 0;
          let h = P.hash_words p.cand_buf w in
          let found =
            shard_find p p.shards.(shard_of h) (tag_of h) p.cand_buf p.cur
              p.cmp_buf
          in
          let dst =
            if found >= 0 then begin
              incr hits;
              found
            end
            else begin
              let id =
                packed_new_state t p ~parent:src ~parent_words:parent_buf
                  ~parent_depth:src_depth p.cand_buf h
              in
              if t.n > max_states then too_many t max_states;
              incr misses;
              Queue.push id q;
              id
            end
          in
          let lid = intern p label in
          let e = (lid lsl 32) lor dst in
          if not (row_contains p e) then begin
            push_edge p e;
            t.ntrans <- t.ntrans + 1;
            cone_touch t (class_of lid label) src
          end)
        (step cfg);
      close_row p src
    done

  (* Packed frontier-parallel BFS with sharded dedup. Three phases per
     round, all deterministic:

     1. expand (parallel): decode + [step] each frontier state, pack
        and hash every successor candidate on the worker domains;
     2. dedup (parallel over hash shards): each shard resolves its own
        candidates in global candidate order against its table —
        existing id, first-occurrence-in-round, or duplicate-of-k —
        with no cross-shard communication and no table merge;
     3. number (sequential): walk candidates in frontier order, assign
        dense ids to first occurrences and append records/edges.

     Because verdicts are per-shard and ids are assigned in the same
     candidate order the sequential queue would discover them, the
     numbering is byte-identical for every job count. *)
  let packed_explore_par t p ~max_states ~cancel ~cone ~step ~jobs
      ~par_threshold =
    let class_of = lid_classifier cone in
    let w = p.pk.pk_words in
    let hits = ref 0 and misses = ref 0 in
    let rounds = ref 0 and par_rounds = ref 0 and seq_rounds = ref 0 in
    let frontier = ref [ initial t ] in
    Fun.protect ~finally:(fun () ->
        Mdp_obs.Metrics.add "lts/dedup_hits" !hits;
        Mdp_obs.Metrics.add "lts/dedup_misses" !misses;
        Mdp_obs.Metrics.add "lts/frontier_rounds" !rounds;
        Mdp_obs.Metrics.add "lts/par_rounds" !par_rounds;
        Mdp_obs.Metrics.add "lts/seq_fallback_rounds" !seq_rounds)
    @@ fun () ->
    while !frontier <> [] do
      poll_cancel cancel;
      let fr = Array.of_list !frontier in
      let nf = Array.length fr in
      incr rounds;
      Mdp_obs.Metrics.observe "lts/frontier_width" nf;
      let fwords = Array.make nf [||] in
      let fdepth = Array.make nf 0 in
      let cands : (L.t * int array * int) array array = Array.make nf [||] in
      let expand lo hi =
        let cur = P.cursor () in
        let buf = Array.make w 0 in
        for i = lo to hi - 1 do
          decode_words p cur buf fr.(i);
          fwords.(i) <- Array.copy buf;
          fdepth.(i) <- P.U8.get p.depths fr.(i);
          let cfg = p.pk.pk_decode fwords.(i) 0 in
          cands.(i) <-
            Array.of_list
              (List.map
                 (fun (label, d) ->
                   let cw = Array.make w 0 in
                   p.pk.pk_blit d cw 0;
                   (label, cw, P.hash_words cw w))
                 (step cfg))
        done
      in
      let njobs = max 1 (min jobs nf) in
      if njobs = 1 || nf < par_threshold then begin
        incr seq_rounds;
        expand 0 nf
      end
      else begin
        incr par_rounds;
        Mdp_prelude.Parallel.iter_chunks ~jobs:njobs nf expand
      end;
      (* Flatten candidates in frontier order; candidate index k is the
         discovery order the sequential engine would use. *)
      let cand_off = Array.make (nf + 1) 0 in
      for i = 0 to nf - 1 do
        cand_off.(i + 1) <- cand_off.(i) + Array.length cands.(i)
      done;
      let m = cand_off.(nf) in
      let next = ref [] in
      if m > 0 then begin
        let dummy = ref None in
        (try
           Array.iter
             (fun cs -> if Array.length cs > 0 then (dummy := Some cs.(0); raise_notrace Exit))
             cands
         with Exit -> ());
        let cand_arr = Array.make m (Option.get !dummy) in
        for i = 0 to nf - 1 do
          Array.blit cands.(i) 0 cand_arr cand_off.(i) (Array.length cands.(i))
        done;
        (* Bucket candidate indices by shard (stable, so each shard sees
           its candidates in k order). *)
        let start = Array.make (nshards + 1) 0 in
        for k = 0 to m - 1 do
          let _, _, h = cand_arr.(k) in
          let s = shard_of h in
          start.(s + 1) <- start.(s + 1) + 1
        done;
        for s = 0 to nshards - 1 do
          start.(s + 1) <- start.(s + 1) + start.(s)
        done;
        let fill = Array.copy start in
        let order = Array.make m 0 in
        for k = 0 to m - 1 do
          let _, _, h = cand_arr.(k) in
          let s = shard_of h in
          order.(fill.(s)) <- k;
          fill.(s) <- fill.(s) + 1
        done;
        (* Per-shard verdicts: >= 0 first occurrence index (k itself for
           the first), -1-id for an already-known state. *)
        let first_of = Array.make m 0 in
        let resolve_shards lo hi =
          let cur = P.cursor () in
          let buf = Array.make w 0 in
          for s = lo to hi - 1 do
            let b = start.(s) and e = start.(s + 1) in
            if e > b then begin
              let tmp = Hashtbl.create (2 * (e - b)) in
              for x = b to e - 1 do
                let k = order.(x) in
                let _, cw, h = cand_arr.(k) in
                let id = shard_find p p.shards.(s) (tag_of h) cw cur buf in
                if id >= 0 then first_of.(k) <- -1 - id
                else begin
                  let prev =
                    Option.value (Hashtbl.find_opt tmp h) ~default:[]
                  in
                  match
                    List.find_opt
                      (fun k' ->
                        let _, cw', _ = cand_arr.(k') in
                        words_equal cw' cw w)
                      prev
                  with
                  | Some k' -> first_of.(k) <- k'
                  | None ->
                    first_of.(k) <- k;
                    Hashtbl.replace tmp h (k :: prev)
                end
              done
            end
          done
        in
        if njobs = 1 || m < par_threshold then resolve_shards 0 nshards
        else Mdp_prelude.Parallel.iter_chunks ~jobs:njobs nshards resolve_shards;
        (* Sequential numbering in candidate order. *)
        let ids_of = Array.make m 0 in
        for i = 0 to nf - 1 do
          let src = fr.(i) in
          p.rlen <- 0;
          for k = cand_off.(i) to cand_off.(i + 1) - 1 do
            let label, cw, h = cand_arr.(k) in
            let v = first_of.(k) in
            let dst =
              if v < 0 then begin
                incr hits;
                -1 - v
              end
              else if v = k then begin
                let id =
                  packed_new_state t p ~parent:src ~parent_words:fwords.(i)
                    ~parent_depth:fdepth.(i) cw h
                in
                if t.n > max_states then too_many t max_states;
                incr misses;
                next := id :: !next;
                id
              end
              else begin
                incr hits;
                ids_of.(v)
              end
            in
            ids_of.(k) <- dst;
            let lid = intern p label in
            let e = (lid lsl 32) lor dst in
            if not (row_contains p e) then begin
              push_edge p e;
              t.ntrans <- t.ntrans + 1;
              cone_touch t (class_of lid label) src
            end
          done;
          close_row p src
        done
      end
      else
        (* No successors anywhere: close empty rows for the frontier. *)
        Array.iter
          (fun src ->
            p.rlen <- 0;
            close_row p src)
          fr;
      (* Evict between rounds, on the calling domain only: the next
         round's worker domains are spawned after this point, and the
         spawn publishes the mutated arena/shard state to them. *)
      spill_down p;
      frontier := List.rev !next
    done

  let default_par_threshold = 512

  (* A failed exploration must not leave its spill directory behind:
     the LTS value is about to become garbage and nothing will ever
     read those files again. (Successful explorations keep theirs — the
     sealed dedup generations and evicted chunks back later decodes.) *)
  let cleanup_spill t =
    match t.repr with
    | Packed { spill = Some ss; _ } -> Spill.remove ss.ss_spill
    | Packed _ | Boxed _ -> ()

  let explore ?(max_states = 200_000) ?(jobs = 1)
      ?(par_threshold = default_par_threshold) ?cancel ?packing ?mem_budget
      ?spill_dir ?label_class ~init ~step () =
    Mdp_obs.Metrics.span "lts/explore" @@ fun () ->
    let t =
      match packing with
      | None -> create ()
      | Some pk -> create_packed ?mem_budget ?spill_dir pk
    in
    let cone =
      match label_class with
      | None -> None
      | Some _ ->
        t.cones <- Some (new_cones ());
        label_class
    in
    ignore (add_state t init : state_id);
    if t.n > max_states then too_many t max_states;
    (try
       match t.repr with
       | Boxed _ ->
         if jobs <= 1 then explore_sequential t ~max_states ~cancel ~cone ~step
         else
           explore_parallel t ~max_states ~cancel ~cone ~step ~jobs
             ~par_threshold
       | Packed p ->
         if jobs <= 1 then
           packed_explore_seq t p ~max_states ~cancel ~cone ~step
         else
           packed_explore_par t p ~max_states ~cancel ~cone ~step ~jobs
             ~par_threshold
     with e ->
       let bt = Printexc.get_raw_backtrace () in
       (match e with
       | Mdp_obs.Cancel.Cancelled _ -> Mdp_obs.Metrics.incr "lts/cancelled"
       | _ -> ());
       cleanup_spill t;
       Printexc.raise_with_backtrace e bt);
    Mdp_obs.Metrics.add "lts/states" t.n;
    (match t.cones with
    | None -> ()
    | Some c ->
      let stores = ref 0 and touches = ref 0 in
      Array.iter (fun k -> if k > 0 then incr stores) c.cn_trans;
      Array.iter (fun k -> touches := !touches + k) c.cn_states;
      Mdp_obs.Metrics.add "whatif/cone_stores" !stores;
      Mdp_obs.Metrics.add "whatif/cone_state_touches" !touches);
    (match t.repr with
    | Boxed _ -> ()
    | Packed p ->
      packed_compact p t.n;
      (match p.spill with
      | None -> ()
      | Some ss ->
        Mdp_obs.Metrics.add "lts/spill_chunks" ss.ss_chunks;
        Mdp_obs.Metrics.add "lts/spill_bytes" ss.ss_bytes;
        Mdp_obs.Metrics.add "lts/spill_faults" (Spill.faults ss.ss_spill));
      if Mdp_obs.Metrics.enabled () then begin
        let ms = packed_mem p t.n t.ntrans in
        Mdp_obs.Metrics.add "lts/packed_state_bytes" ms.ms_state_bytes;
        Mdp_obs.Metrics.add "lts/packed_edge_bytes" ms.ms_edge_bytes;
        Mdp_obs.Metrics.add "lts/packed_index_bytes" ms.ms_index_bytes;
        Mdp_obs.Metrics.add "lts/packed_dedup_bytes" ms.ms_dedup_bytes;
        Mdp_obs.Metrics.add "lts/packed_total_bytes" ms.ms_total_bytes;
        Mdp_obs.Metrics.add "lts/packed_full_states" ms.ms_full_states;
        Mdp_obs.Metrics.add "lts/packed_delta_states" ms.ms_delta_states;
        Array.iter
          (fun sh -> Mdp_obs.Metrics.observe "lts/shard_occupancy" sh.count)
          p.shards
      end);
    t

  let path_to t pred =
    if t.n = 0 then None
    else begin
      let start = initial t in
      if pred start then Some []
      else begin
        let back = Array.make t.n None in
        let seen = Array.make t.n false in
        let q = Queue.create () in
        seen.(start) <- true;
        Queue.push start q;
        let found = ref None in
        while !found = None && not (Queue.is_empty q) do
          let s = Queue.pop q in
          iter_successors t s (fun label d ->
              if !found = None && not seen.(d) then begin
                seen.(d) <- true;
                back.(d) <- Some (s, label);
                if pred d then found := Some d else Queue.push d q
              end)
        done;
        match !found with
        | None -> None
        | Some goal ->
          let rec unwind acc s =
            match back.(s) with
            | None -> acc
            | Some (prev, label) -> unwind ((label, s) :: acc) prev
          in
          Some (unwind [] goal)
      end
    end

  let exists_finally t pred = path_to t pred <> None

  let always_globally t pred = List.for_all pred (reachable t)

  let states_where t pred =
    List.rev (fold_states t (fun acc s -> if pred s then s :: acc else acc) [])

  let dag_fold t ~(combine : 'a list -> 'a) ~(sink : 'a) =
    (* Memoised fold over the reachable DAG from the initial state;
       None when a cycle is reachable. *)
    if t.n = 0 then None
    else begin
      let memo = Array.make t.n None in
      let on_stack = Array.make t.n false in
      let exception Cyclic in
      let rec value s =
        match memo.(s) with
        | Some v -> v
        | None ->
          if on_stack.(s) then raise Cyclic;
          on_stack.(s) <- true;
          let deg = out_degree t s in
          let v =
            if deg = 0 then sink
            else combine (List.init deg (fun i -> value (nth_dst t s i)))
          in
          on_stack.(s) <- false;
          memo.(s) <- Some v;
          v
      in
      match value (initial t) with v -> Some v | exception Cyclic -> None
    end

  let longest_path t =
    dag_fold t ~sink:0
      ~combine:(fun depths -> 1 + List.fold_left max 0 depths)

  let count_maximal_paths t =
    dag_fold t ~sink:1 ~combine:(fun counts -> List.fold_left ( + ) 0 counts)

  (* Partition refinement compares labels by their printed form: two
     labels are the same action for bisimulation iff they print
     identically. This sidesteps needing ordered labels and is faithful
     for our label types, whose printers are injective. Unlike the seed —
     which re-printed every label and built fresh signature strings each
     refinement round — each distinct printed label is interned to a
     small integer once up front, and the rounds then work purely on
     integer keys. *)
  let bisimulation_classes t ~init_key =
    if t.n = 0 then []
    else begin
      let lids = Hashtbl.create 64 in
      let nlids = ref 0 in
      let lid_of label =
        let key = Format.asprintf "%a" L.pp label in
        match Hashtbl.find_opt lids key with
        | Some i -> i
        | None ->
          let i = !nlids in
          incr nlids;
          Hashtbl.add lids key i;
          i
      in
      (* Per state: (label id, dst) pairs, printed once. *)
      let edges =
        Array.init t.n (fun s ->
            let acc = ref [] in
            iter_successors t s (fun label dst ->
                acc := (lid_of label, dst) :: !acc);
            Array.of_list (List.rev !acc))
      in
      let block = Array.make t.n 0 in
      let assign keyed =
        (* keyed: state -> key; returns number of blocks. Keys are
           compared structurally, so any value works. *)
        let tbl = Hashtbl.create 16 in
        let next = ref 0 in
        for s = 0 to t.n - 1 do
          let k = keyed s in
          match Hashtbl.find_opt tbl k with
          | Some b -> block.(s) <- b
          | None ->
            Hashtbl.add tbl k !next;
            block.(s) <- !next;
            incr next
        done;
        !next
      in
      let nblocks = ref (assign init_key) in
      let pair_compare (l1, b1) (l2, b2) =
        match Int.compare l1 l2 with 0 -> Int.compare b1 b2 | c -> c
      in
      let changed = ref true in
      while !changed do
        let signature s =
          let sigs =
            List.sort_uniq pair_compare
              (List.map
                 (fun (lid, d) -> (lid, block.(d)))
                 (Array.to_list edges.(s)))
          in
          (block.(s), sigs)
        in
        let n' = assign signature in
        changed := n' <> !nblocks;
        nblocks := n'
      done;
      let buckets = Array.make !nblocks [] in
      for s = t.n - 1 downto 0 do
        buckets.(block.(s)) <- s :: buckets.(block.(s))
      done;
      Array.to_list buckets
    end

  let quotient t ~init_key =
    let classes = bisimulation_classes t ~init_key in
    let block_of = Array.make (max t.n 1) 0 in
    List.iteri
      (fun b members -> List.iter (fun s -> block_of.(s) <- b) members)
      classes;
    let q = create () in
    let qid = Array.make (List.length classes) (-1) in
    List.iteri
      (fun b members ->
        let repr = List.fold_left min max_int members in
        qid.(b) <- add_state q (state_data t repr))
      classes;
    if t.n > 0 then set_initial q qid.(block_of.(initial t));
    iter_transitions t (fun { src; label; dst } ->
        ignore
          (add_transition q ~src:qid.(block_of.(src)) ~label
             ~dst:qid.(block_of.(dst))
            : bool));
    (q, fun s -> qid.(block_of.(s)))

  let dot_escape s =
    String.concat ""
      (List.map
         (function '"' -> "\\\"" | '\n' -> "\\n" | c -> String.make 1 c)
         (List.init (String.length s) (String.get s)))

  let to_dot ?(graph_name = "lts") ?state_label ?state_style ?transition_style t
      =
    let buf = Buffer.create 1024 in
    let addf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
    addf "digraph %s {\n  rankdir=LR;\n" graph_name;
    iter_states t (fun s ->
        let label =
          match state_label with
          | Some f -> f s
          | None -> Printf.sprintf "s%d" s
        in
        let style =
          match state_style with
          | Some f -> ( match f s with "" -> "" | st -> ", " ^ st)
          | None -> ""
        in
        let init_mark = if t.init = Some s then ", penwidth=2" else "" in
        addf "  n%d [label=\"%s\"%s%s];\n" s (dot_escape label) style init_mark);
    iter_transitions t (fun tr ->
        let style =
          match transition_style with
          | Some f -> ( match f tr with "" -> "" | st -> ", " ^ st)
          | None -> ""
        in
        addf "  n%d -> n%d [label=\"%s\"%s];\n" tr.src tr.dst
          (dot_escape (Format.asprintf "%a" L.pp tr.label))
          style);
    addf "}\n";
    Buffer.contents buf

  let pp_stats ppf t =
    Format.fprintf ppf "%d states, %d transitions" t.n t.ntrans
end
