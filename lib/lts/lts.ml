module type STATE = sig
  type t

  val equal : t -> t -> bool
  val hash : t -> int
  val pp : Format.formatter -> t -> unit
end

module type LABEL = sig
  type t

  val equal : t -> t -> bool
  val hash : t -> int
  val pp : Format.formatter -> t -> unit
end

exception Too_many_states of int

module Make (S : STATE) (L : LABEL) = struct
  module Tbl = Hashtbl.Make (S)

  type state_id = int

  type transition = { src : state_id; label : L.t; dst : state_id }

  (* Per-state successor list as a growable flat array: appends are
     amortised O(1), iteration touches contiguous memory, and reading
     never allocates (the seed stored a reversed cons-list and paid a
     List.rev per [successors] call). *)
  type succs = { mutable arr : (L.t * state_id) array; mutable len : int }

  let new_succs () = { arr = [||]; len = 0 }

  let push_succ s entry =
    if s.len = Array.length s.arr then begin
      let cap = max 4 (2 * s.len) in
      let bigger = Array.make cap entry in
      Array.blit s.arr 0 bigger 0 s.len;
      s.arr <- bigger
    end;
    s.arr.(s.len) <- entry;
    s.len <- s.len + 1

  (* Out-degrees are tiny in generated privacy models, so a linear scan
     with a physical-equality fast path beats any hashing below this
     length; past it, a per-graph hash index keyed (src, label hash, dst)
     keeps duplicate detection O(1) (the seed scanned unconditionally,
     which is quadratic on high-fan-out states). *)
  let scan_threshold = 16

  type t = {
    ids : state_id Tbl.t;
    mutable data : S.t array;
    mutable n : int;
    mutable out : succs array;
    mutable ntrans : int;
    mutable init : state_id option;
    dup : (int * int * int, L.t list) Hashtbl.t;
        (* (src, L.hash label, dst) -> labels with that hash; only
           consulted for sources whose out-degree exceeds
           [scan_threshold]. *)
    mutable preds : (state_id * L.t) list array option;
        (* Reverse index, built lazily by [predecessors]; dropped on any
           mutation. *)
  }

  let create () =
    {
      ids = Tbl.create 64;
      data = [||];
      n = 0;
      out = [||];
      ntrans = 0;
      init = None;
      dup = Hashtbl.create 64;
      preds = None;
    }

  let grow t =
    if t.n >= Array.length t.data then begin
      let cap = max 16 (2 * Array.length t.data) in
      let data = Array.make cap t.data.(0) in
      Array.blit t.data 0 data 0 t.n;
      t.data <- data;
      let out = Array.make cap t.out.(0) in
      Array.blit t.out 0 out 0 t.n;
      t.out <- out
    end

  let add_state t s =
    match Tbl.find_opt t.ids s with
    | Some id -> id
    | None ->
      let id = t.n in
      if id = 0 then begin
        t.data <- Array.make 16 s;
        t.out <- Array.init 16 (fun _ -> new_succs ())
      end
      else grow t;
      t.data.(id) <- s;
      t.out.(id) <- new_succs ();
      t.n <- id + 1;
      Tbl.add t.ids s id;
      t.preds <- None;
      if t.init = None then t.init <- Some id;
      id

  let set_initial t id =
    if id < 0 || id >= t.n then invalid_arg "Lts.set_initial";
    t.init <- Some id

  let initial t =
    match t.init with
    | Some id -> id
    | None -> invalid_arg "Lts.initial: empty LTS"

  let num_states t = t.n
  let num_transitions t = t.ntrans
  let state_data t id =
    if id < 0 || id >= t.n then invalid_arg "Lts.state_data";
    t.data.(id)

  let find_state t s = Tbl.find_opt t.ids s

  let states t = List.init t.n Fun.id

  let successors t id =
    if id < 0 || id >= t.n then invalid_arg "Lts.successors";
    let s = t.out.(id) in
    List.init s.len (fun i -> s.arr.(i))

  let iter_successors t id f =
    if id < 0 || id >= t.n then invalid_arg "Lts.iter_successors";
    let s = t.out.(id) in
    for i = 0 to s.len - 1 do
      let label, dst = s.arr.(i) in
      f label dst
    done

  let scan_dup s label dst =
    let rec go i =
      i < s.len
      &&
      let l, d = s.arr.(i) in
      (d = dst && L.equal l label) || go (i + 1)
    in
    go 0

  let index_succs t src =
    let s = t.out.(src) in
    for i = 0 to s.len - 1 do
      let label, dst = s.arr.(i) in
      let key = (src, L.hash label, dst) in
      let bucket = Option.value (Hashtbl.find_opt t.dup key) ~default:[] in
      Hashtbl.replace t.dup key (label :: bucket)
    done

  let add_transition t ~src ~label ~dst =
    if src < 0 || src >= t.n || dst < 0 || dst >= t.n then
      invalid_arg "Lts.add_transition";
    let s = t.out.(src) in
    let duplicate =
      if s.len < scan_threshold then scan_dup s label dst
      else begin
        (* Crossing the threshold: index the transitions inserted while
           scanning was still cheaper. *)
        if s.len = scan_threshold then index_succs t src;
        let key = (src, L.hash label, dst) in
        let bucket = Option.value (Hashtbl.find_opt t.dup key) ~default:[] in
        if List.exists (L.equal label) bucket then true
        else begin
          Hashtbl.replace t.dup key (label :: bucket);
          false
        end
      end
    in
    if duplicate then false
    else begin
      push_succ s (label, dst);
      t.ntrans <- t.ntrans + 1;
      t.preds <- None;
      true
    end

  let iter_transitions t f =
    for src = 0 to t.n - 1 do
      let s = t.out.(src) in
      for i = 0 to s.len - 1 do
        let label, dst = s.arr.(i) in
        f { src; label; dst }
      done
    done

  let transitions t =
    let acc = ref [] in
    iter_transitions t (fun tr -> acc := tr :: !acc);
    List.rev !acc

  let predecessors t id =
    if id < 0 || id >= t.n then invalid_arg "Lts.predecessors";
    let index =
      match t.preds with
      | Some p -> p
      | None ->
        let p = Array.make (max t.n 1) [] in
        (* Reverse iteration so each list ends up in transition-iteration
           order, matching the seed's semantics. *)
        for src = t.n - 1 downto 0 do
          let s = t.out.(src) in
          for i = s.len - 1 downto 0 do
            let label, dst = s.arr.(i) in
            p.(dst) <- (src, label) :: p.(dst)
          done
        done;
        t.preds <- Some p;
        p
    in
    index.(id)

  let rebuild_dup t =
    Hashtbl.reset t.dup;
    iter_transitions t (fun { src; label; dst } ->
        let key = (src, L.hash label, dst) in
        let bucket = Option.value (Hashtbl.find_opt t.dup key) ~default:[] in
        Hashtbl.replace t.dup key (label :: bucket))

  let map_labels t f =
    for src = 0 to t.n - 1 do
      let s = t.out.(src) in
      for i = 0 to s.len - 1 do
        let label, dst = s.arr.(i) in
        s.arr.(i) <- (f { src; label; dst }, dst)
      done
    done;
    t.preds <- None;
    rebuild_dup t

  let reachable t =
    if t.n = 0 then []
    else begin
      let seen = Array.make t.n false in
      let order = ref [] in
      let q = Queue.create () in
      let start = initial t in
      seen.(start) <- true;
      Queue.push start q;
      while not (Queue.is_empty q) do
        let s = Queue.pop q in
        order := s :: !order;
        iter_successors t s (fun _ d ->
            if not seen.(d) then begin
              seen.(d) <- true;
              Queue.push d q
            end)
      done;
      List.rev !order
    end

  let is_deterministic t =
    let ok = ref true in
    for s = 0 to t.n - 1 do
      let labels = List.map fst (successors t s) in
      let rec dup = function
        | [] -> false
        | l :: rest -> List.exists (L.equal l) rest || dup rest
      in
      if dup labels then ok := false
    done;
    !ok

  let is_acyclic t =
    (* Iterative colouring (0 unvisited, 1 on stack, 2 done): no OCaml
       stack frame per state, so deep chains cannot overflow. *)
    let colour = Array.make (max t.n 1) 0 in
    let ok = ref true in
    let stack = ref [] in
    for root = 0 to t.n - 1 do
      if !ok && colour.(root) = 0 then begin
        colour.(root) <- 1;
        stack := [ (root, 0) ];
        while !ok && !stack <> [] do
          match !stack with
          | [] -> ()
          | (s, i) :: rest ->
            let su = t.out.(s) in
            if i >= su.len then begin
              colour.(s) <- 2;
              stack := rest
            end
            else begin
              stack := (s, i + 1) :: rest;
              let _, d = su.arr.(i) in
              if colour.(d) = 1 then ok := false
              else if colour.(d) = 0 then begin
                colour.(d) <- 1;
                stack := (d, 0) :: !stack
              end
            end
        done
      end
    done;
    !ok

  (* ----- exploration ----- *)

  (* How many sequential expansions happen between two cancellation
     polls: a poll is an atomic read plus (with a deadline) a clock
     read, so probing per state would be measurable on million-state
     runs while probing per batch keeps the reaction bound tight. *)
  let cancel_poll_batch = 512

  let poll_cancel = function
    | None -> ()
    | Some c -> Mdp_obs.Cancel.check c

  let explore_sequential t ~max_states ~cancel ~step =
    (* Dedup hits/misses are batched in local refs and published once:
       a Metrics.add per transition would dominate small models. *)
    let hits = ref 0 and misses = ref 0 in
    let expanded = ref 0 in
    let q = Queue.create () in
    Queue.push (initial t) q;
    Fun.protect ~finally:(fun () ->
        Mdp_obs.Metrics.add "lts/dedup_hits" !hits;
        Mdp_obs.Metrics.add "lts/dedup_misses" !misses;
        Mdp_obs.Metrics.incr "lts/seq_explores")
    @@ fun () ->
    while not (Queue.is_empty q) do
      (* Poll on the first expansion too: a token fired before the run
         starts must stop it before any real work, also on models far
         smaller than the batch. *)
      if !expanded land (cancel_poll_batch - 1) = 0 then poll_cancel cancel;
      incr expanded;
      let src = Queue.pop q in
      List.iter
        (fun (label, dst_data) ->
          let before = t.n in
          let dst = add_state t dst_data in
          if t.n > max_states then raise (Too_many_states max_states);
          ignore (add_transition t ~src ~label ~dst : bool);
          if t.n > before then begin
            incr misses;
            Queue.push dst q
          end
          else incr hits)
        (step t.data.(src))
    done

  (* Frontier-synchronised BFS: every state of the current frontier is
     expanded (possibly in parallel), then the results are merged
     sequentially in frontier order. Because the sequential queue BFS
     also processes states in discovery order, the merged LTS — state
     numbering, transition order, everything — is identical for every
     job count. [step] must be pure: it runs concurrently on multiple
     domains against shared immutable inputs.

     Frontiers narrower than [par_threshold] are expanded on the
     calling domain: spawn/join costs dwarf the expansion work there,
     and small models (every frontier narrow) would otherwise run
     slower under [jobs > 1] than sequentially. *)
  let explore_parallel t ~max_states ~cancel ~step ~jobs ~par_threshold =
    let hits = ref 0 and misses = ref 0 in
    let rounds = ref 0 and par_rounds = ref 0 and seq_rounds = ref 0 in
    let frontier = ref [ initial t ] in
    Fun.protect ~finally:(fun () ->
        Mdp_obs.Metrics.add "lts/dedup_hits" !hits;
        Mdp_obs.Metrics.add "lts/dedup_misses" !misses;
        Mdp_obs.Metrics.add "lts/frontier_rounds" !rounds;
        Mdp_obs.Metrics.add "lts/par_rounds" !par_rounds;
        Mdp_obs.Metrics.add "lts/seq_fallback_rounds" !seq_rounds)
    @@ fun () ->
    while !frontier <> [] do
      (* Polled once per frontier round, on the calling domain only, so
         a fired token stops the exploration within one round without
         any worker domain ever raising mid-chunk (the spawned chunks
         of the current round always run to completion and are
         joined). *)
      poll_cancel cancel;
      let fr = Array.of_list !frontier in
      let nf = Array.length fr in
      incr rounds;
      Mdp_obs.Metrics.observe "lts/frontier_width" nf;
      let results = Array.make nf [] in
      let expand lo hi =
        for i = lo to hi - 1 do
          results.(i) <- step t.data.(fr.(i))
        done
      in
      let njobs = max 1 (min jobs nf) in
      if njobs = 1 || nf < par_threshold then begin
        incr seq_rounds;
        expand 0 nf
      end
      else begin
        incr par_rounds;
        Mdp_prelude.Parallel.iter_chunks ~jobs:njobs nf expand
      end;
      let next = ref [] in
      for i = 0 to nf - 1 do
        let src = fr.(i) in
        List.iter
          (fun (label, dst_data) ->
            let before = t.n in
            let dst = add_state t dst_data in
            if t.n > max_states then raise (Too_many_states max_states);
            ignore (add_transition t ~src ~label ~dst : bool);
            if t.n > before then begin
              incr misses;
              next := dst :: !next
            end
            else incr hits)
          results.(i)
      done;
      frontier := List.rev !next
    done

  let default_par_threshold = 512

  let explore ?(max_states = 200_000) ?(jobs = 1)
      ?(par_threshold = default_par_threshold) ?cancel ~init ~step () =
    Mdp_obs.Metrics.span "lts/explore" @@ fun () ->
    let t = create () in
    ignore (add_state t init : state_id);
    if t.n > max_states then raise (Too_many_states max_states);
    (try
       if jobs <= 1 then explore_sequential t ~max_states ~cancel ~step
       else explore_parallel t ~max_states ~cancel ~step ~jobs ~par_threshold
     with Mdp_obs.Cancel.Cancelled _ as e ->
       Mdp_obs.Metrics.incr "lts/cancelled";
       raise e);
    Mdp_obs.Metrics.add "lts/states" t.n;
    t

  let path_to t pred =
    if t.n = 0 then None
    else begin
      let start = initial t in
      if pred start then Some []
      else begin
        let back = Array.make t.n None in
        let seen = Array.make t.n false in
        let q = Queue.create () in
        seen.(start) <- true;
        Queue.push start q;
        let found = ref None in
        while !found = None && not (Queue.is_empty q) do
          let s = Queue.pop q in
          iter_successors t s (fun label d ->
              if !found = None && not seen.(d) then begin
                seen.(d) <- true;
                back.(d) <- Some (s, label);
                if pred d then found := Some d else Queue.push d q
              end)
        done;
        match !found with
        | None -> None
        | Some goal ->
          let rec unwind acc s =
            match back.(s) with
            | None -> acc
            | Some (prev, label) -> unwind ((label, s) :: acc) prev
          in
          Some (unwind [] goal)
      end
    end

  let exists_finally t pred = path_to t pred <> None

  let always_globally t pred = List.for_all pred (reachable t)

  let states_where t pred = List.filter pred (states t)

  let dag_fold t ~(combine : 'a list -> 'a) ~(sink : 'a) =
    (* Memoised fold over the reachable DAG from the initial state;
       None when a cycle is reachable. *)
    if t.n = 0 then None
    else begin
      let memo = Array.make t.n None in
      let on_stack = Array.make t.n false in
      let exception Cyclic in
      let rec value s =
        match memo.(s) with
        | Some v -> v
        | None ->
          if on_stack.(s) then raise Cyclic;
          on_stack.(s) <- true;
          let su = t.out.(s) in
          let v =
            if su.len = 0 then sink
            else
              combine
                (List.init su.len (fun i -> value (snd su.arr.(i))))
          in
          on_stack.(s) <- false;
          memo.(s) <- Some v;
          v
      in
      match value (initial t) with v -> Some v | exception Cyclic -> None
    end

  let longest_path t =
    dag_fold t ~sink:0
      ~combine:(fun depths -> 1 + List.fold_left max 0 depths)

  let count_maximal_paths t =
    dag_fold t ~sink:1 ~combine:(fun counts -> List.fold_left ( + ) 0 counts)

  (* Partition refinement compares labels by their printed form: two
     labels are the same action for bisimulation iff they print
     identically. This sidesteps needing ordered labels and is faithful
     for our label types, whose printers are injective. Unlike the seed —
     which re-printed every label and built fresh signature strings each
     refinement round — each distinct printed label is interned to a
     small integer once up front, and the rounds then work purely on
     integer keys. *)
  let bisimulation_classes t ~init_key =
    if t.n = 0 then []
    else begin
      let lids = Hashtbl.create 64 in
      let nlids = ref 0 in
      let lid_of label =
        let key = Format.asprintf "%a" L.pp label in
        match Hashtbl.find_opt lids key with
        | Some i -> i
        | None ->
          let i = !nlids in
          incr nlids;
          Hashtbl.add lids key i;
          i
      in
      (* Per state: (label id, dst) pairs, printed once. *)
      let edges =
        Array.init t.n (fun s ->
            let su = t.out.(s) in
            Array.init su.len (fun i ->
                let label, dst = su.arr.(i) in
                (lid_of label, dst)))
      in
      let block = Array.make t.n 0 in
      let assign keyed =
        (* keyed: state -> key; returns number of blocks. Keys are
           compared structurally, so any value works. *)
        let tbl = Hashtbl.create 16 in
        let next = ref 0 in
        for s = 0 to t.n - 1 do
          let k = keyed s in
          match Hashtbl.find_opt tbl k with
          | Some b -> block.(s) <- b
          | None ->
            Hashtbl.add tbl k !next;
            block.(s) <- !next;
            incr next
        done;
        !next
      in
      let nblocks = ref (assign init_key) in
      let pair_compare (l1, b1) (l2, b2) =
        match Int.compare l1 l2 with 0 -> Int.compare b1 b2 | c -> c
      in
      let changed = ref true in
      while !changed do
        let signature s =
          let sigs =
            List.sort_uniq pair_compare
              (List.map
                 (fun (lid, d) -> (lid, block.(d)))
                 (Array.to_list edges.(s)))
          in
          (block.(s), sigs)
        in
        let n' = assign signature in
        changed := n' <> !nblocks;
        nblocks := n'
      done;
      let buckets = Array.make !nblocks [] in
      for s = t.n - 1 downto 0 do
        buckets.(block.(s)) <- s :: buckets.(block.(s))
      done;
      Array.to_list buckets
    end

  let quotient t ~init_key =
    let classes = bisimulation_classes t ~init_key in
    let block_of = Array.make (max t.n 1) 0 in
    List.iteri
      (fun b members -> List.iter (fun s -> block_of.(s) <- b) members)
      classes;
    let q = create () in
    let qid = Array.make (List.length classes) (-1) in
    List.iteri
      (fun b members ->
        let repr = List.fold_left min max_int members in
        qid.(b) <- add_state q (state_data t repr))
      classes;
    if t.n > 0 then set_initial q qid.(block_of.(initial t));
    iter_transitions t (fun { src; label; dst } ->
        ignore
          (add_transition q ~src:qid.(block_of.(src)) ~label
             ~dst:qid.(block_of.(dst))
            : bool));
    (q, fun s -> qid.(block_of.(s)))

  let dot_escape s =
    String.concat ""
      (List.map
         (function '"' -> "\\\"" | '\n' -> "\\n" | c -> String.make 1 c)
         (List.init (String.length s) (String.get s)))

  let to_dot ?(graph_name = "lts") ?state_label ?state_style ?transition_style t
      =
    let buf = Buffer.create 1024 in
    let addf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
    addf "digraph %s {\n  rankdir=LR;\n" graph_name;
    List.iter
      (fun s ->
        let label =
          match state_label with
          | Some f -> f s
          | None -> Printf.sprintf "s%d" s
        in
        let style =
          match state_style with
          | Some f -> ( match f s with "" -> "" | st -> ", " ^ st)
          | None -> ""
        in
        let init_mark = if t.init = Some s then ", penwidth=2" else "" in
        addf "  n%d [label=\"%s\"%s%s];\n" s (dot_escape label) style init_mark)
      (states t);
    iter_transitions t (fun tr ->
        let style =
          match transition_style with
          | Some f -> ( match f tr with "" -> "" | st -> ", " ^ st)
          | None -> ""
        in
        addf "  n%d -> n%d [label=\"%s\"%s];\n" tr.src tr.dst
          (dot_escape (Format.asprintf "%a" L.pp tr.label))
          style);
    addf "}\n";
    Buffer.contents buf

  let pp_stats ppf t =
    Format.fprintf ppf "%d states, %d transitions" t.n t.ntrans
end
