(** Generic labelled transition systems.

    States are hash-consed: adding equal state data twice yields the same
    dense integer id, which is what makes fixed-point exploration of the
    privacy model terminate (paper §II-B generates the LTS as the set of
    reachable privacy states). Labels are arbitrary and mutable in place
    (risk analysis annotates transition labels after generation, paper
    §III).

    Two storage backends share one API:

    - {b boxed} (the default, and the only backend for hand-built LTSs):
      every state is a materialised [S.t] in a hash-consing table, with
      flat growable successor arrays — the engine of PR 2.
    - {b packed} (chosen by passing [?packing] to {!explore}): a state is
      a fixed number of 63-bit payload words, stored as a byte-granular
      record in an append-only arena — delta-encoded against its
      breadth-first parent when that is smaller than a full record — and
      deduplicated through hash-partitioned shard tables. Labels are
      interned; a transition is one int. At privacy-model shapes this
      stores states at a few bytes each instead of a boxed config's
      hundreds, which is what lets ten-million-state models sit in RAM.

    [explore] optionally expands breadth-first frontiers on multiple
    OCaml 5 domains with a deterministic merge; the resulting LTS — state
    numbering included — is identical for every job count and for both
    backends. *)

module type STATE = sig
  type t

  val equal : t -> t -> bool
  val hash : t -> int
  val pp : Format.formatter -> t -> unit
end

module type LABEL = sig
  type t

  val equal : t -> t -> bool
  val hash : t -> int
  (** Must be consistent with [equal]; used for O(1) duplicate-transition
      detection. *)

  val pp : Format.formatter -> t -> unit
end

exception Too_many_states of int
(** Raised by [explore] when the state guard is exceeded; carries the
    limit that was hit. Top-level (outside the functor) so every
    instantiation raises the same exception. *)

type abort_stats = {
  ab_limit : int;  (** the [max_states] that was exceeded *)
  ab_states : int;  (** states stored when the guard fired *)
  ab_transitions : int;
  ab_bytes_per_state : float option;
      (** observed bytes/state at abort; [None] for the boxed engine,
          which has no byte-exact accounting *)
  ab_resident_bytes : int option;
      (** engine bytes still in RAM at abort (packed only) *)
  ab_spill_bytes : int;  (** bytes evicted to disk at abort; 0 unspilled *)
  ab_mem_budget : int option;
      (** the resident budget the exploration ran under, if any *)
}
(** Context captured when {!Too_many_states} is raised, for error
    reports that help operators size [max_states] against real memory. *)

val last_abort_stats : unit -> abort_stats option
(** Stats of the most recent {!Too_many_states} raised {e on this
    domain} (domain-local so concurrent explorations on different serve
    workers do not clobber each other). The raise and the catch of an
    exception happen on the same domain, so reading this in a handler is
    race-free. *)

type mem_stats = {
  ms_states : int;
  ms_transitions : int;
  ms_state_bytes : int;  (** state-record arena (full + delta records) *)
  ms_edge_bytes : int;  (** flat (label id, dst) edge stream *)
  ms_index_bytes : int;  (** record offsets, depths, row table *)
  ms_dedup_bytes : int;  (** shard tables *)
  ms_full_states : int;  (** states stored as full (zero-base) records *)
  ms_delta_states : int;  (** states stored as deltas against their parent *)
  ms_labels : int;  (** distinct interned labels *)
  ms_total_bytes : int;
  ms_bytes_per_state : float;
  ms_resident_bytes : int;
      (** the part of [ms_total_bytes] still held in RAM — equal to it
          when nothing spilled *)
  ms_spill_bytes : int;  (** bytes evicted to the disk tier *)
  ms_spill_chunks : int;  (** arena chunks evicted *)
  ms_spill_tables : int;  (** sealed dedup generations evicted *)
  ms_spill_faults : int;  (** disk-tier reads served so far *)
  ms_mem_budget : int option;  (** resident budget, if one was set *)
}
(** Byte accounting of a packed LTS, split by structure. Counts the
    engine's own storage (arena, edges, index tables, shard tables), not
    the OCaml heap at large. [ms_total_bytes] keeps its PR 7 meaning —
    all engine bytes wherever they live — so resident occupancy is
    [ms_total_bytes - ms_spill_bytes = ms_resident_bytes]. *)

type spill_stats = {
  sp_dir : string;  (** the run directory holding the spill files *)
  sp_bytes : int;
  sp_chunks : int;
  sp_tables : int;
  sp_faults : int;
  sp_budget : int;  (** the budget that forced the spill, in bytes *)
}
(** Disk-tier occupancy of a packed LTS that ran under [?mem_budget] and
    actually evicted something. *)

type 'a packer = {
  pk_words : int;  (** words per encoded state — a model constant *)
  pk_blit : 'a -> int array -> int -> unit;
      (** write the state's [pk_words] words at the given offset *)
  pk_decode : int array -> int -> 'a;
      (** rebuild a state from [pk_words] words at the given offset; must
          be safe to call from multiple domains concurrently *)
}
(** Fixed-width word codec for a state type. Contract: two states of the
    same model are [S.equal] iff their encoded words are equal — the
    packed engine dedups and hashes on words alone. *)

module Make (S : STATE) (L : LABEL) : sig
  type t

  type state_id = int
  (** Dense, starting at 0 in insertion order. *)

  type transition = { src : state_id; label : L.t; dst : state_id }

  val create : unit -> t
  (** An empty boxed LTS. *)

  (** {1 Construction} *)

  val add_state : t -> S.t -> state_id
  (** Hash-consing: returns the existing id when equal data was added
      before. The first state added becomes the initial state unless
      {!set_initial} overrides it. On a packed LTS the state is encoded
      as a full record. *)

  val set_initial : t -> state_id -> unit
  val add_transition : t -> src:state_id -> label:L.t -> dst:state_id -> bool
  (** [false] when an identical transition (same endpoints, equal label)
      already exists; the LTS is unchanged in that case. On a packed LTS
      whose rows were laid down by [explore], post-exploration additions
      go to per-source overflow rows and iterate after the row's
      transitions — matching the insertion order a boxed LTS would
      have. *)

  val explore :
    ?max_states:int ->
    ?jobs:int ->
    ?par_threshold:int ->
    ?cancel:Mdp_obs.Cancel.t ->
    ?packing:S.t packer ->
    ?mem_budget:int ->
    ?spill_dir:string ->
    ?label_class:(L.t -> int) ->
    init:S.t ->
    step:(S.t -> (L.t * S.t) list) ->
    unit ->
    t
  (** Breadth-first fixed point: starting from [init], repeatedly expand
      unvisited states with [step].

      [packing] selects the packed backend: states live as packed words
      in an arena (delta-encoded against their BFS parent when smaller),
      dedup runs through hash-partitioned shard tables, and [step]
      receives freshly decoded states. The result is observationally
      identical to the boxed run — same states, numbering, transition
      order — at a fraction of the memory.

      With [jobs > 1], each breadth-first frontier is expanded in
      parallel on that many OCaml domains and merged in frontier order,
      which makes the result — state numbering included — identical to
      the sequential run. [step] must then be safe to call concurrently
      (pure up to freshly allocated results). On the packed backend the
      per-round dedup itself is parallel too — each hash shard resolves
      its own candidates independently, with no global table merge —
      followed by a sequential numbering pass in frontier order that
      pins down the deterministic ids.

      Frontiers narrower than [par_threshold] (default 512) are
      expanded on the calling domain even when [jobs > 1]: below that
      width the spawn/join overhead exceeds the expansion work, so
      small models would otherwise run slower in parallel than
      sequentially. Pass [~par_threshold:0] to force the parallel
      machinery regardless of frontier width (used by the engine
      equivalence tests).

      [mem_budget] (packed backend only) bounds the engine's {e
      resident} bytes: when arena chunks, side tables and dedup shards
      together exceed the budget, sealed 64 KiB arena chunks — oldest
      first — and sealed dedup-shard tables are evicted to append-only
      spill files in a fresh temporary directory (override the parent
      with [spill_dir]), and are read back on demand through bounded
      mmap windows and a small per-domain pinned-chunk cache. The
      exploration then completes in disk rather than RAM, identically:
      spilling moves bytes, never changes discovery order, so state
      numbering stays byte-identical for every budget and every job
      count. Budgets below the engine's unevictable floor (edge stream
      + offset index + the open chunk) degrade to spilling everything
      evictable. The spill directory is deleted when the LTS is
      GC-collected, when {!drop_spill} is called, on any exploration
      failure ({!Too_many_states}, cancellation), and by an [at_exit]
      sweep.

      [label_class] assigns each transition label a small non-negative
      class (e.g. the index of the store it touches; [-1] for none);
      when set, exploration accumulates per-class reachability cone
      summaries readable via {!store_cone_stats} at no extra passes
      over the LTS.

      [cancel] is polled cooperatively: once per frontier round in
      parallel mode (only the merging domain polls, so no worker raises
      mid-chunk) and every few hundred expansions sequentially. A fired
      token unwinds with [Mdp_obs.Cancel.Cancelled] within one round;
      the partially built LTS is discarded and nothing run-global is
      left behind, so the caller can immediately start a fresh
      exploration.

      @raise Mdp_obs.Cancel.Cancelled when [cancel] fires mid-run.
      @raise Too_many_states when [max_states] (default 200_000) is
      exceeded — a guard against accidentally infinite models. The
      abort context (including observed bytes/state on the packed
      backend) is readable via {!last_abort_stats}. *)

  (** {1 Observation} *)

  val initial : t -> state_id
  (** @raise Invalid_argument on an empty LTS. *)

  val num_states : t -> int
  val num_transitions : t -> int

  val state_data : t -> state_id -> S.t
  (** On a packed LTS this decodes the state's record (walking its delta
      chain); safe to call from multiple domains concurrently. Decoded
      values are not cached — hold on to the result across repeated
      use. *)

  val find_state : t -> S.t -> state_id option
  (** On a packed LTS this reuses shared scratch buffers — do not call
      from several domains at once; use {!make_finder} for that. *)

  val make_finder : t -> S.t -> state_id option
  (** [make_finder t] is a lookup closure with private scratch buffers:
      distinct finders may run on distinct domains concurrently (each
      also decodes through its own cursor). Partially apply once per
      domain and reuse — creation allocates the buffers. *)

  val interned_labels : t -> L.t array option
  (** The packed backend's interned-label table (a copy), indexed by the
      label ids {!iter_successors_lid} reports. [None] on a boxed LTS,
      which interns nothing. Lets a caller precompute one verdict per
      distinct label instead of re-inspecting labels per transition. *)

  val iter_successors_lid : t -> state_id -> (int -> state_id -> unit) -> unit
  (** Like {!iter_successors} but passing the interned label id instead
      of the label — an int-only row scan. Packed backend only.

      @raise Invalid_argument on a boxed LTS. *)

  val states : t -> state_id list
  (** All ids as a list — O(n) allocation; prefer {!iter_states} or
      {!fold_states}. *)

  val iter_states : t -> (state_id -> unit) -> unit
  (** Iterate ids [0 .. num_states - 1] without allocating. Reads
      [num_states] once: states appended during iteration (as the
      pseudonym-risk pass does) are not visited — snapshot semantics. *)

  val fold_states : t -> ('a -> state_id -> 'a) -> 'a -> 'a

  val successors : t -> state_id -> (L.t * state_id) list
  (** In insertion order. Allocates a fresh list; prefer
      {!iter_successors} on hot paths. *)

  val iter_successors : t -> state_id -> (L.t -> state_id -> unit) -> unit
  (** Iterate the successor array in insertion order without allocating. *)

  val predecessors : t -> state_id -> (state_id * L.t) list
  (** Served from a cached reverse index (built lazily, invalidated by
      mutation); in transition-iteration order. *)

  val transitions : t -> transition list
  val iter_transitions : t -> (transition -> unit) -> unit

  val mem_stats : t -> mem_stats option
  (** Byte accounting of the packed representation; [None] on a boxed
      LTS. *)

  val spill_stats : t -> spill_stats option
  (** Disk-tier occupancy; [None] on a boxed LTS and on a packed LTS
      that never spilled (no budget, or the model fit under it). *)

  val drop_spill : t -> unit
  (** Delete the LTS's spill directory now instead of waiting for GC or
      process exit. Decodes of spilled states fail afterwards — call
      only when done with the LTS. No-op when nothing spilled. *)

  val store_cone_stats : t -> (int * int) array option
  (** Per-class [(states, transitions)] cone summaries accumulated
      during exploration: slot [c] counts the distinct source states
      with at least one class-[c] transition, and the class-[c]
      transitions themselves. [None] unless [explore] ran with
      [label_class]. *)

  val cone_sources : t -> int -> state_id array option
  (** The distinct source states with at least one class-[c] outgoing
      transition, in ascending id order — the frontier seed for a
      cone-scoped incremental re-exploration. [None] unless [explore]
      ran with [label_class]; [Some [||]] for a class never touched. *)

  val rebuild_cones : t -> (L.t -> int) -> unit
  (** Recompute the cone summaries (counts and source sets) of an
      already-built LTS by classifying every stored transition — one
      pass over the edges. Used after an incremental rebuild so the
      fresh LTS answers {!store_cone_stats}/{!cone_sources} exactly as
      if it had been explored with [label_class]. *)

  (** {1 Label rewriting} *)

  val map_labels : t -> (transition -> L.t) -> unit
  (** Replace every transition's label in place, visiting transitions in
      {!iter_transitions} order. *)

  (** {1 Analysis} *)

  val reachable : t -> state_id list
  (** States reachable from the initial state, BFS order. *)

  val is_deterministic : t -> bool
  (** No state has two outgoing transitions with equal labels. *)

  val is_acyclic : t -> bool
  (** Iterative (explicit stack): safe on arbitrarily deep graphs. *)

  val path_to : t -> (state_id -> bool) -> (L.t * state_id) list option
  (** Shortest witness path (sequence of steps from the initial state) to
      a state satisfying the predicate; [Some []] if the initial state
      does. *)

  val exists_finally : t -> (state_id -> bool) -> bool
  (** CTL [EF p] at the initial state. *)

  val always_globally : t -> (state_id -> bool) -> bool
  (** CTL [AG p] at the initial state: [p] holds on every reachable
      state. *)

  val states_where : t -> (state_id -> bool) -> state_id list

  val longest_path : t -> int option
  (** Longest transition count along any path from the initial state;
      [None] when the reachable part is cyclic. *)

  val count_maximal_paths : t -> int option
  (** Number of distinct paths from the initial state to a sink (a state
      with no successors) — for a generated privacy model, the number of
      complete execution interleavings. [None] when cyclic. *)

  val bisimulation_classes : t -> init_key:(state_id -> string) -> state_id list list
  (** Partition refinement: coarsest partition refining [init_key] that is
      stable under transitions (strong bisimulation with labels compared
      by their printed form — see note in the implementation). Labels are
      interned to integer keys once; the refinement rounds are purely
      integer-keyed. Covers all states, reachable or not. *)

  val quotient : t -> init_key:(state_id -> string) -> t * (state_id -> state_id)
  (** Quotient LTS by {!bisimulation_classes}; the function maps original
      ids to quotient ids. State data of a class is its representative's.
      The quotient is always boxed, whatever the input backend. *)

  (** {1 Output} *)

  val to_dot :
    ?graph_name:string ->
    ?state_label:(state_id -> string) ->
    ?state_style:(state_id -> string) ->
    ?transition_style:(transition -> string) ->
    t ->
    string
  (** [state_style]/[transition_style] return extra DOT attributes
      (e.g. ["style=dashed, color=red"]); empty string for none. *)

  val pp_stats : Format.formatter -> t -> unit
end
