(** Generic labelled transition systems.

    States are hash-consed: adding equal state data twice yields the same
    dense integer id, which is what makes fixed-point exploration of the
    privacy model terminate (paper §II-B generates the LTS as the set of
    reachable privacy states). The state table doubles as an interning
    table: the first config to reach a state is the canonical
    representative every later candidate is compared against. Labels are
    arbitrary and mutable in place (risk analysis annotates transition
    labels after generation, paper §III).

    Successor sets are stored as flat growable arrays with a hashed
    duplicate index, so insertion and iteration are O(1) per transition;
    [explore] optionally expands breadth-first frontiers on multiple
    OCaml 5 domains with a deterministic merge. *)

module type STATE = sig
  type t

  val equal : t -> t -> bool
  val hash : t -> int
  val pp : Format.formatter -> t -> unit
end

module type LABEL = sig
  type t

  val equal : t -> t -> bool
  val hash : t -> int
  (** Must be consistent with [equal]; used for O(1) duplicate-transition
      detection. *)

  val pp : Format.formatter -> t -> unit
end

exception Too_many_states of int
(** Raised by [explore] when the state guard is exceeded; carries the
    limit that was hit. Top-level (outside the functor) so every
    instantiation raises the same exception. *)

module Make (S : STATE) (L : LABEL) : sig
  type t

  type state_id = int
  (** Dense, starting at 0 in insertion order. *)

  type transition = { src : state_id; label : L.t; dst : state_id }

  val create : unit -> t

  (** {1 Construction} *)

  val add_state : t -> S.t -> state_id
  (** Hash-consing: returns the existing id when equal data was added
      before. The first state added becomes the initial state unless
      {!set_initial} overrides it. *)

  val set_initial : t -> state_id -> unit
  val add_transition : t -> src:state_id -> label:L.t -> dst:state_id -> bool
  (** [false] when an identical transition (same endpoints, equal label)
      already exists; the LTS is unchanged in that case. Duplicate
      detection is a hash lookup, not an out-degree scan. *)

  val explore :
    ?max_states:int ->
    ?jobs:int ->
    ?par_threshold:int ->
    ?cancel:Mdp_obs.Cancel.t ->
    init:S.t ->
    step:(S.t -> (L.t * S.t) list) ->
    unit ->
    t
  (** Breadth-first fixed point: starting from [init], repeatedly expand
      unvisited states with [step].

      With [jobs > 1], each breadth-first frontier is expanded in
      parallel on that many OCaml domains and merged sequentially in
      frontier order, which makes the result — state numbering included —
      identical to the sequential run. [step] must then be safe to call
      concurrently (pure up to freshly allocated results).

      Frontiers narrower than [par_threshold] (default 512) are
      expanded on the calling domain even when [jobs > 1]: below that
      width the spawn/join overhead exceeds the expansion work, so
      small models would otherwise run slower in parallel than
      sequentially. Pass [~par_threshold:0] to force the parallel
      machinery regardless of frontier width (used by the engine
      equivalence tests).

      [cancel] is polled cooperatively: once per frontier round in
      parallel mode (only the merging domain polls, so no worker raises
      mid-chunk) and every few hundred expansions sequentially. A fired
      token unwinds with [Mdp_obs.Cancel.Cancelled] within one round;
      the partially built LTS is discarded and nothing run-global is
      left behind, so the caller can immediately start a fresh
      exploration.

      @raise Mdp_obs.Cancel.Cancelled when [cancel] fires mid-run.
      @raise Too_many_states when [max_states] (default 200_000) is
      exceeded — a guard against accidentally infinite models. *)

  (** {1 Observation} *)

  val initial : t -> state_id
  (** @raise Invalid_argument on an empty LTS. *)

  val num_states : t -> int
  val num_transitions : t -> int
  val state_data : t -> state_id -> S.t
  val find_state : t -> S.t -> state_id option
  val states : t -> state_id list
  val successors : t -> state_id -> (L.t * state_id) list
  (** In insertion order. Allocates a fresh list; prefer
      {!iter_successors} on hot paths. *)

  val iter_successors : t -> state_id -> (L.t -> state_id -> unit) -> unit
  (** Iterate the successor array in insertion order without allocating. *)

  val predecessors : t -> state_id -> (state_id * L.t) list
  (** Served from a cached reverse index (built lazily, invalidated by
      mutation); in transition-iteration order. *)

  val transitions : t -> transition list
  val iter_transitions : t -> (transition -> unit) -> unit

  (** {1 Label rewriting} *)

  val map_labels : t -> (transition -> L.t) -> unit
  (** Replace every transition's label in place. *)

  (** {1 Analysis} *)

  val reachable : t -> state_id list
  (** States reachable from the initial state, BFS order. *)

  val is_deterministic : t -> bool
  (** No state has two outgoing transitions with equal labels. *)

  val is_acyclic : t -> bool
  (** Iterative (explicit stack): safe on arbitrarily deep graphs. *)

  val path_to : t -> (state_id -> bool) -> (L.t * state_id) list option
  (** Shortest witness path (sequence of steps from the initial state) to
      a state satisfying the predicate; [Some []] if the initial state
      does. *)

  val exists_finally : t -> (state_id -> bool) -> bool
  (** CTL [EF p] at the initial state. *)

  val always_globally : t -> (state_id -> bool) -> bool
  (** CTL [AG p] at the initial state: [p] holds on every reachable
      state. *)

  val states_where : t -> (state_id -> bool) -> state_id list

  val longest_path : t -> int option
  (** Longest transition count along any path from the initial state;
      [None] when the reachable part is cyclic. *)

  val count_maximal_paths : t -> int option
  (** Number of distinct paths from the initial state to a sink (a state
      with no successors) — for a generated privacy model, the number of
      complete execution interleavings. [None] when cyclic. *)

  val bisimulation_classes : t -> init_key:(state_id -> string) -> state_id list list
  (** Partition refinement: coarsest partition refining [init_key] that is
      stable under transitions (strong bisimulation with labels compared
      by their printed form — see note in the implementation). Labels are
      interned to integer keys once; the refinement rounds are purely
      integer-keyed. Covers all states, reachable or not. *)

  val quotient : t -> init_key:(state_id -> string) -> t * (state_id -> state_id)
  (** Quotient LTS by {!bisimulation_classes}; the function maps original
      ids to quotient ids. State data of a class is its representative's. *)

  (** {1 Output} *)

  val to_dot :
    ?graph_name:string ->
    ?state_label:(state_id -> string) ->
    ?state_style:(state_id -> string) ->
    ?transition_style:(transition -> string) ->
    t ->
    string
  (** [state_style]/[transition_style] return extra DOT attributes
      (e.g. ["style=dashed, color=red"]); empty string for none. *)

  val pp_stats : Format.formatter -> t -> unit
end
