(* Disk tier for the packed LTS engine.

   A spill run is one directory holding append-only files. Writers are
   single-domain (the exploration's merging domain) and strictly
   sequential — sealed arena chunks and sealed dedup tables are
   immutable once written, so a spill file never needs a rename, a
   rewrite or an fsync barrier for correctness (the data is a cache of
   what RAM held; a crash loses nothing but the run itself).

   Reads go through bounded [Unix.map_file] windows rather than one
   whole-file mapping: mapped pages count toward the process address
   space (`ulimit -v`), so mapping a multi-GB spill file would defeat
   the point of spilling. Windows are cached per domain (never shared,
   never locked); dropping a window is just letting the GC collect the
   bigarray, which unmaps it.

   Above the windows sits a per-domain pinned-chunk cache holding
   verbatim [Bytes] copies of recently faulted arena chunks, so
   delta-chain decodes that revisit a spilled chunk pay the mmap copy
   once. Chunks are never patched in place — in-flight decode cursors
   hold references into chunk bytes — so a fault always allocates a
   fresh copy. *)

type bigstring =
  (char, Bigarray.int8_unsigned_elt, Bigarray.c_layout) Bigarray.Array1.t

let empty_big : bigstring = Bigarray.Array1.create Bigarray.char Bigarray.c_layout 0

type file = {
  f_uid : int;  (* global id: keys the domain-local caches *)
  f_fd : Unix.file_descr;
  f_owner : t;
  mutable f_len : int;
      (* appended bytes; only the writing domain mutates it, and worker
         domains are spawned after any append they could observe (the
         spawn is the publication point) *)
}

and t = {
  sp_dir : string;
  mutable sp_files : (string * file) list;
  mutable sp_live : bool;
  sp_faults : int Atomic.t;
      (* chunk loads + window mappings; atomic because worker domains
         fault concurrently *)
}

(* ------------------------------------------------------------------ *)
(* Run-directory lifecycle *)

(* Every live run is registered so process exit (normal or via a failed
   bench gate calling [exit 1]) removes the directories: spill files
   are caches, never state, so teardown is unconditional. *)
let registry : t list ref = ref []
let registry_mu = Mutex.create ()
let uids = Atomic.make 1
let run_counter = Atomic.make 0
let at_exit_installed = Atomic.make false

type wslot = {
  mutable w_map : bigstring;  (* empty_big = not mapped *)
  mutable w_base : int;
  mutable w_len : int;
}

(* Per-domain window-mapping table: outer array indexed by file uid,
   inner by window number (see the windowed read path below). Cleared
   wholesale when the owning domain removes a run, so a dropped run's
   mappings are released without waiting for finalisation; worker
   domains are transient and their tables die with them. *)
let wcache_key : wslot array array ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [||])

let drop_windows () = Domain.DLS.get wcache_key := [||]
let new_wslot () = { w_map = empty_big; w_base = 0; w_len = 0 }

let rec remove_registered t = function
  | [] -> []
  | x :: rest -> if x == t then rest else x :: remove_registered t rest

let remove t =
  (* Idempotent: called from abort paths, explicit drops, GC finalisers
     and the at_exit sweep, in any order. *)
  Mutex.lock registry_mu;
  let live = t.sp_live in
  t.sp_live <- false;
  registry := remove_registered t !registry;
  Mutex.unlock registry_mu;
  if live then begin
    List.iter
      (fun (name, f) ->
        (try Unix.close f.f_fd with Unix.Unix_error _ -> ());
        try Sys.remove (Filename.concat t.sp_dir name) with Sys_error _ -> ())
      t.sp_files;
    (try Unix.rmdir t.sp_dir with Unix.Unix_error _ -> ());
    (* Release this domain's mappings of the removed files now rather
       than at finalisation; live runs simply remap on their next
       read. *)
    drop_windows ()
  end

let remove_all () =
  let snapshot =
    Mutex.lock registry_mu;
    let l = !registry in
    Mutex.unlock registry_mu;
    l
  in
  List.iter remove snapshot

let create ?dir () =
  let base = match dir with Some d -> d | None -> Filename.get_temp_dir_name () in
  let rec mk attempts =
    let name =
      Printf.sprintf "mdpriv-spill-%d-%d" (Unix.getpid ())
        (Atomic.fetch_and_add run_counter 1)
    in
    let path = Filename.concat base name in
    match Unix.mkdir path 0o700 with
    | () -> path
    | exception Unix.Unix_error (Unix.EEXIST, _, _) when attempts > 0 ->
      mk (attempts - 1)
  in
  let path = mk 16 in
  let t =
    { sp_dir = path; sp_files = []; sp_live = true; sp_faults = Atomic.make 0 }
  in
  Mutex.lock registry_mu;
  registry := t :: !registry;
  Mutex.unlock registry_mu;
  if not (Atomic.exchange at_exit_installed true) then at_exit remove_all;
  t

let dir t = t.sp_dir
let live t = t.sp_live
let faults t = Atomic.get t.sp_faults

(* ------------------------------------------------------------------ *)
(* Append-only files *)

let file t name =
  if not t.sp_live then invalid_arg "Spill.file: run removed";
  let fd =
    Unix.openfile
      (Filename.concat t.sp_dir name)
      [ Unix.O_RDWR; Unix.O_CREAT; Unix.O_TRUNC; Unix.O_CLOEXEC ]
      0o600
  in
  let f =
    { f_uid = Atomic.fetch_and_add uids 1; f_fd = fd; f_owner = t; f_len = 0 }
  in
  t.sp_files <- (name, f) :: t.sp_files;
  f

let length f = f.f_len

(* Append [len] bytes of [b] from [pos]; returns the record's file
   offset. Single-writer, so plain sequential writes. *)
let append f b ~pos ~len =
  let off = f.f_len in
  let written = ref 0 in
  while !written < len do
    match Unix.write f.f_fd b (pos + !written) (len - !written) with
    | w -> written := !written + w
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  done;
  f.f_len <- off + len;
  off

(* ------------------------------------------------------------------ *)
(* Windowed read path *)

(* 1 MiB windows in a per-domain, per-file table indexed by window
   number: each window of a file is mapped at most once per domain and
   kept until the run is removed (a remap happens only when the file
   has grown past what an existing mapping covers, which is bounded by
   append rounds, not reads). Mapped pages count toward the process
   address space, so the invariants that matter are (a) resident
   windows never exceed the spill size per domain, and (b) reads never
   allocate fresh mappings — an eviction-churning cache here would pile
   up dead 1 MiB mappings faster than the GC finalises them and blow
   through `ulimit -v` from the read path alone. *)
let window_bits = 20
let window_size = 1 lsl window_bits

let map_window f base =
  Atomic.incr f.f_owner.sp_faults;
  let len = min window_size (f.f_len - base) in
  let g =
    Unix.map_file f.f_fd ~pos:(Int64.of_int base) Bigarray.char
      Bigarray.c_layout false [| len |]
  in
  (Bigarray.array1_of_genarray g, len)

let grow_slots arr n mk =
  let cap = max n (max 8 (2 * Array.length arr)) in
  let bigger = Array.init cap (fun i -> if i < Array.length arr then arr.(i) else mk i) in
  bigger

(* The window slot covering [off], valid through at least
   [min (off + want) f_len]. [want] never exceeds [window_size]. *)
let window f off =
  let widx = off lsr window_bits in
  let cache = Domain.DLS.get wcache_key in
  if f.f_uid >= Array.length !cache then
    cache := grow_slots !cache (f.f_uid + 1) (fun _ -> [||]);
  let tab = !cache in
  if widx >= Array.length tab.(f.f_uid) then
    tab.(f.f_uid) <- grow_slots tab.(f.f_uid) (widx + 1) (fun _ -> new_wslot ());
  let s = tab.(f.f_uid).(widx) in
  if s.w_len < min f.f_len ((widx lsl window_bits) + window_size) - (widx lsl window_bits)
  then begin
    (* not mapped yet, or the file grew past what this mapping covered *)
    let base = widx lsl window_bits in
    let map, len = map_window f base in
    s.w_map <- map;
    s.w_base <- base;
    s.w_len <- len
  end;
  s

(* Copy [len] bytes at file offset [off] into [dst] at [dst_pos],
   crossing window boundaries as needed. *)
let read f ~off ~len dst ~dst_pos =
  let off = ref off and remaining = ref len and dpos = ref dst_pos in
  while !remaining > 0 do
    let s = window f !off in
    let avail = s.w_base + s.w_len - !off in
    let n = min avail !remaining in
    let m = s.w_map in
    let src0 = !off - s.w_base in
    for i = 0 to n - 1 do
      Bytes.unsafe_set dst (!dpos + i) (Bigarray.Array1.unsafe_get m (src0 + i))
    done;
    off := !off + n;
    dpos := !dpos + n;
    remaining := !remaining - n
  done

(* One sealed 5-byte dedup entry at [off]: (tag byte lsl 32) lor u32.
   Fast path reads straight from the window; entries that straddle a
   window boundary fall back to the byte loop. *)
let entry5 f ~off =
  let s = window f off in
  let i = off - s.w_base in
  if i + 5 <= s.w_len then begin
    let m = s.w_map in
    let b0 = Char.code (Bigarray.Array1.unsafe_get m i) in
    let b1 = Char.code (Bigarray.Array1.unsafe_get m (i + 1)) in
    let b2 = Char.code (Bigarray.Array1.unsafe_get m (i + 2)) in
    let b3 = Char.code (Bigarray.Array1.unsafe_get m (i + 3)) in
    let b4 = Char.code (Bigarray.Array1.unsafe_get m (i + 4)) in
    (b4 lsl 32) lor (b3 lsl 24) lor (b2 lsl 16) lor (b1 lsl 8) lor b0
  end
  else begin
    let tmp = Bytes.create 5 in
    read f ~off ~len:5 tmp ~dst_pos:0;
    let u32 = Int32.to_int (Bytes.get_int32_le tmp 0) land 0xffff_ffff in
    (Char.code (Bytes.get tmp 4) lsl 32) lor u32
  end

(* ------------------------------------------------------------------ *)
(* Pinned-chunk cache *)

(* Verbatim copies of spilled arena chunks, direct-mapped per domain.
   64 KiB chunks x 64 slots = 4 MiB per long-lived domain; worker
   domains live one frontier round, so theirs cost at most that
   transiently. Raise via MDPRIV_SPILL_PIN (slots) when analyses over a
   heavily spilled LTS show high fault counts — see
   docs/PERFORMANCE.md. *)
let default_pinned_slots =
  match Sys.getenv_opt "MDPRIV_SPILL_PIN" with
  | Some s -> ( match int_of_string_opt s with Some n when n > 0 -> n | _ -> 64)
  | None -> 64

let pinned_slots = ref default_pinned_slots
let set_pinned_slots n = if n > 0 then pinned_slots := n

type pcache = {
  mutable pc_keys : int array;  (* (uid lsl 24) lor chunk index; -1 empty *)
  mutable pc_chunks : Bytes.t array;
}

let pcache_key : pcache Domain.DLS.key =
  Domain.DLS.new_key (fun () -> { pc_keys = [||]; pc_chunks = [||] })

let get_pcache () =
  let pc = Domain.DLS.get pcache_key in
  if Array.length pc.pc_keys <> !pinned_slots then begin
    pc.pc_keys <- Array.make !pinned_slots (-1);
    pc.pc_chunks <- Array.make !pinned_slots Bytes.empty
  end;
  pc

(* The [size]-byte chunk [idx] of [f], from the pinned cache or freshly
   copied out of the mapped view. The returned bytes are immutable by
   convention and always a private copy, so callers may hold cursors
   into them indefinitely. *)
let chunk f ~idx ~size =
  let pc = get_pcache () in
  let key = (f.f_uid lsl 24) lor idx in
  let slot = ((idx * 7) + f.f_uid) mod Array.length pc.pc_keys in
  if Array.unsafe_get pc.pc_keys slot = key then Array.unsafe_get pc.pc_chunks slot
  else begin
    Atomic.incr f.f_owner.sp_faults;
    let b = Bytes.create size in
    read f ~off:(idx * size) ~len:size b ~dst_pos:0;
    Array.unsafe_set pc.pc_keys slot key;
    Array.unsafe_set pc.pc_chunks slot b;
    b
  end
