(* Byte-level machinery for the packed LTS engine: LEB128 varints, a
   chunked append-only byte arena, a byte-granular word-diff codec, and
   the avalanche hash used for shard placement.

   Everything here is deliberately free of per-call allocation on the
   hot paths: encoders write into caller-owned scratch [Bytes], decoders
   advance a caller-owned cursor. *)

(* ------------------------------------------------------------------ *)
(* LEB128 varints *)

(* Encode [v] (non-negative) at [pos] in [b]; returns the position past
   the last byte written. 63-bit values take at most 9 bytes. *)
let put_varint b pos v =
  let pos = ref pos and v = ref v in
  while !v >= 0x80 do
    Bytes.unsafe_set b !pos (Char.unsafe_chr (0x80 lor (!v land 0x7f)));
    incr pos;
    v := !v lsr 7
  done;
  Bytes.unsafe_set b !pos (Char.unsafe_chr !v);
  !pos + 1

let varint_size v =
  let rec go n v = if v < 0x80 then n else go (n + 1) (v lsr 7) in
  go 1 v

(* Zigzag: signed deltas to non-negative varint payloads. *)
let zigzag v = (v lsl 1) lxor (v asr 62)
let unzigzag v = (v lsr 1) lxor (- (v land 1))

(* A decode cursor: [b] is the chunk holding the record, [pos] the
   intra-chunk offset. Reused across calls to avoid allocation. *)
type cursor = { mutable b : Bytes.t; mutable pos : int }

let cursor () = { b = Bytes.empty; pos = 0 }

let get_varint c =
  let v = ref 0 and shift = ref 0 and continue = ref true in
  while !continue do
    let byte = Char.code (Bytes.unsafe_get c.b c.pos) in
    c.pos <- c.pos + 1;
    v := !v lor ((byte land 0x7f) lsl !shift);
    shift := !shift + 7;
    continue := byte >= 0x80
  done;
  !v

(* ------------------------------------------------------------------ *)
(* Word patches *)

(* A 63-bit word is stored as the set of bytes in which it differs from
   a base word: one mask byte (bit i = byte i differs) followed by the
   differing bytes of the new value. Sparse bitset words differ from
   their parent (or from zero) in one or two bytes, so a typical patch
   is 2-3 bytes instead of 8. *)

let put_word_patch b pos ~base w =
  let x = base lxor w in
  let mask = ref 0 and p = ref (pos + 1) in
  for i = 0 to 7 do
    if (x lsr (i * 8)) land 0xff <> 0 then begin
      mask := !mask lor (1 lsl i);
      Bytes.unsafe_set b !p (Char.unsafe_chr ((w lsr (i * 8)) land 0xff));
      incr p
    end
  done;
  Bytes.unsafe_set b pos (Char.unsafe_chr !mask);
  !p

let word_patch_size ~base w =
  let x = base lxor w in
  let n = ref 1 in
  for i = 0 to 7 do
    if (x lsr (i * 8)) land 0xff <> 0 then incr n
  done;
  !n

let get_word_patch c ~base =
  let mask = Char.code (Bytes.unsafe_get c.b c.pos) in
  c.pos <- c.pos + 1;
  if mask = 0 then base
  else begin
    let w = ref base in
    let m = ref mask in
    while !m <> 0 do
      let i = !m land (- !m) in
      let byte_i =
        (* index of the single set bit of [i] *)
        let rec idx k b = if b = 1 then k else idx (k + 1) (b lsr 1) in
        idx 0 i
      in
      let byte = Char.code (Bytes.unsafe_get c.b c.pos) in
      c.pos <- c.pos + 1;
      w := (!w land lnot (0xff lsl (byte_i * 8))) lor (byte lsl (byte_i * 8));
      m := !m land (!m - 1)
    done;
    !w
  end

(* ------------------------------------------------------------------ *)
(* Chunked byte arena *)

(* Append-only byte storage in fixed-size chunks. Records never
   straddle a chunk boundary (the tail of a chunk is padded when a
   record does not fit), so a decoder can address any record with one
   chunk lookup and then read plain bytes. Compared to one growable
   [Bytes], chunking avoids ever copying the arena to grow it.

   The same two properties make the arena spillable: a sealed chunk is
   immutable, and chunk [i] evicted in order lands at file offset
   [i * chunk_size], so the disk tier needs no index — [seek] just
   routes spilled-prefix chunks through {!Spill.chunk}. *)

module Arena = struct
  (* 64 KiB chunks: small enough that a cached artifact for a toy model
     costs one chunk, large enough that a 200 MB ten-million-state arena
     is only ~3000 chunk pointers. *)
  let chunk_bits = 16
  let chunk_size = 1 lsl chunk_bits

  type t = {
    mutable chunks : Bytes.t array;
    mutable nchunks : int;
    mutable len : int; (* global length, padding included *)
    mutable spilled : int;
        (* chunks [0, spilled) live in [sfile] at offset i * chunk_size;
           their RAM slots are cleared. Eviction is strictly in chunk
           order and never reaches the open chunk. *)
    mutable sfile : Spill.file option;
  }

  let create () =
    { chunks = [||]; nchunks = 0; len = 0; spilled = 0; sfile = None }

  let bytes t = t.len
  let resident_bytes t = (t.nchunks - t.spilled) * chunk_size

  (* Sealed chunks still resident: everything strictly below the open
     chunk that has not been evicted yet. *)
  let evictable t = min (t.len lsr chunk_bits) t.nchunks - t.spilled

  (* Evict the oldest resident sealed chunk. Padding bytes go to disk
     verbatim — offsets never point into padding, so readback is
     byte-faithful where it matters. *)
  let evict_chunk t sfile =
    let i = t.spilled in
    let (_ : int) = Spill.append sfile t.chunks.(i) ~pos:0 ~len:chunk_size in
    t.chunks.(i) <- Bytes.empty;
    t.sfile <- Some sfile;
    t.spilled <- i + 1

  let new_chunk t =
    if t.nchunks = Array.length t.chunks then begin
      let cap = max 4 (2 * t.nchunks) in
      let bigger = Array.make cap Bytes.empty in
      Array.blit t.chunks 0 bigger 0 t.nchunks;
      t.chunks <- bigger
    end;
    t.chunks.(t.nchunks) <- Bytes.create chunk_size;
    t.nchunks <- t.nchunks + 1

  (* Append [n] bytes of [src] (from 0) as one record; returns its
     global offset. [n] must be at most [chunk_size]. *)
  let append t src n =
    if n > chunk_size then invalid_arg "Arena.append: record exceeds chunk";
    if n = 0 then t.len
    else begin
      let intra = t.len land (chunk_size - 1) in
      (* pad to the next chunk boundary when the record would straddle *)
      if intra + n > chunk_size then t.len <- (t.len lor (chunk_size - 1)) + 1;
      while t.len lsr chunk_bits >= t.nchunks do
        new_chunk t
      done;
      let off = t.len in
      Bytes.blit src 0 t.chunks.(off lsr chunk_bits) (off land (chunk_size - 1)) n;
      t.len <- off + n;
      off
    end

  (* Point [c] at the record starting at global offset [off]. Spilled
     chunks come back as pinned-cache copies; the extra compare on the
     resident path is noise against the decode that follows. *)
  let seek t c off =
    let i = off lsr chunk_bits in
    c.b <-
      (if i < t.spilled then
         Spill.chunk (Option.get t.sfile) ~idx:i ~size:chunk_size
       else t.chunks.(i));
    c.pos <- off land (chunk_size - 1)
end

(* ------------------------------------------------------------------ *)
(* Hashing *)

(* Murmur-style finaliser: the shard index and slot come from distinct
   bit ranges of the hash, so it must avalanche well. *)
let fmix h =
  let h = h lxor (h lsr 33) in
  let h = h * 0xff51afd7ed558cc in
  let h = h lxor (h lsr 33) in
  let h = h * 0xc4ceb9fe1a85ec5 in
  h lxor (h lsr 33)

let hash_words w n =
  let h = ref n in
  for i = 0 to n - 1 do
    h := (!h * 0x100000001b3) lxor Array.unsafe_get w i
  done;
  fmix !h land max_int

(* ------------------------------------------------------------------ *)
(* uint32 side tables *)

(* Dense per-state u32 values (arena offsets, edge-row offsets) kept in
   [Bytes] at 4 bytes per state instead of a boxed-free but 8-byte int
   array. *)
module U32 = struct
  type t = { mutable b : Bytes.t; mutable cap : int }

  let create () = { b = Bytes.create (4 * 1024); cap = 1024 }

  let ensure t n =
    if n > t.cap then begin
      let cap = max n (2 * t.cap) in
      let bigger = Bytes.create (4 * cap) in
      Bytes.blit t.b 0 bigger 0 (4 * t.cap);
      t.b <- bigger;
      t.cap <- cap
    end

  let set t i v =
    if v < 0 || v > 0xffff_ffff then
      failwith "Mdp_lts: packed arena exceeds the 4 GiB offset range";
    ensure t (i + 1);
    Bytes.set_int32_le t.b (4 * i) (Int32.of_int v)

  let get t i = Int32.to_int (Bytes.get_int32_le t.b (4 * i)) land 0xffff_ffff

  (* Shrink the backing store to exactly [n] entries: growth doubles,
     so a finished exploration can be holding up to 2x the bytes it
     needs. Called once when an LTS is sealed. *)
  let trim t n =
    if n < t.cap then begin
      t.b <- Bytes.sub t.b 0 (4 * max 1 n);
      t.cap <- max 1 n
    end

  let bytes t = 4 * t.cap
end

(* Dense per-state byte values (delta-chain depths). *)
module U8 = struct
  type t = { mutable b : Bytes.t; mutable cap : int }

  let create () = { b = Bytes.make 1024 '\000'; cap = 1024 }

  let ensure t n =
    if n > t.cap then begin
      let cap = max n (2 * t.cap) in
      let bigger = Bytes.make cap '\000' in
      Bytes.blit t.b 0 bigger 0 t.cap;
      t.b <- bigger;
      t.cap <- cap
    end

  let set t i v =
    ensure t (i + 1);
    Bytes.unsafe_set t.b i (Char.unsafe_chr (v land 0xff))

  let get t i = Char.code (Bytes.unsafe_get t.b i)

  let trim t n =
    if n < t.cap then begin
      t.b <- Bytes.sub t.b 0 (max 1 n);
      t.cap <- max 1 n
    end

  let bytes t = t.cap
end
