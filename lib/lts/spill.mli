(** Disk tier for the packed LTS engine.

    A spill run is one temporary directory of append-only files holding
    sealed arena chunks and sealed dedup tables evicted under a
    resident-byte budget. Writes are sequential and single-domain;
    reads go through bounded [Unix.map_file] windows (whole-file
    mappings would count against [ulimit -v], defeating the point) with
    a per-domain pinned-chunk cache of verbatim [Bytes] copies above
    them.

    Spill files are caches, never state: removal is always safe, and
    every live run is torn down by an [at_exit] sweep so no directory
    outlives the process — normal exit, failed bench gates and uncaught
    exceptions included. *)

type t
(** One spill run: a directory plus its files and fault counter. *)

type file
(** An append-only file inside a run. *)

val create : ?dir:string -> unit -> t
(** Make a fresh run directory ([mdpriv-spill-<pid>-<n>]) under [dir]
    (default: the system temp directory) and register it for the
    process-exit sweep. *)

val dir : t -> string
val live : t -> bool

val remove : t -> unit
(** Close and delete the run's files and directory. Idempotent — abort
    paths, explicit drops, GC finalisers and the exit sweep may race.
    Reads against a removed run's files fail. *)

val remove_all : unit -> unit
(** Remove every live run of this process (the [at_exit] sweep; bench
    calls it explicitly before gate-failure exits). *)

val faults : t -> int
(** Read faults served from disk so far: pinned-chunk misses plus
    window mappings, across all domains. *)

val file : t -> string -> file
(** Create (truncating) an append-only file in the run directory. *)

val length : file -> int

val append : file -> Bytes.t -> pos:int -> len:int -> int
(** Append [len] bytes, returning their file offset. Single-writer:
    only the exploration's merging domain appends, and worker domains
    are always (re)spawned after the appends they could observe. *)

val read : file -> off:int -> len:int -> Bytes.t -> dst_pos:int -> unit
(** Copy bytes out of the mapped view, crossing window boundaries as
    needed. *)

val entry5 : file -> off:int -> int
(** One sealed 5-byte dedup entry at [off], packed as
    [(tag byte lsl 32) lor u32le]. *)

val chunk : file -> idx:int -> size:int -> Bytes.t
(** The [size]-byte chunk starting at [idx * size], served from the
    calling domain's pinned-chunk cache or copied out of the mapped
    view on a fault. Always a private copy: callers may hold cursors
    into the result indefinitely. *)

val set_pinned_slots : int -> unit
(** Resize the per-domain pinned-chunk cache (slots of one arena chunk
    each; default 64, or [MDPRIV_SPILL_PIN]). Takes effect on each
    domain's next fault. *)
