(** Automatic generation of the LTS privacy model (paper §II-B).

    Starting from the absolute privacy state with empty datastores, the
    generator explores every reachable configuration by firing:

    - {b flow actions} — each data-flow arrow, classified by the §II-B
      extraction rules ([collect]/[disclose]/[create]/[anon]/[read]),
      firing at most once and only when its source node holds the data it
      sends ("provided the start node has the correct data to flow") —
      except [create]/[anon] flows, which are authorship: the Doctor
      writes a Diagnosis it never collected, so store-writes need no
      prior possession and set the author's [has] bits;
    - {b potential reads} — policy-derived [read]s: any actor the ACL
      grants read access to fields currently in a store may read them even
      if no flow prescribes it (this is what surfaces §IV-A's
      Administrator risk);
    - {b potential deletes} (optional) — policy-derived [delete]s by actors
      holding the Delete permission, clearing the store and recomputing
      the "could identify" variables.

    State-variable semantics: a [collect]/[disclose]/[read] sets the
    receiving actor's [has] bits; a [create]/[anon] fills the store and
    sets the [could] bits of every actor the policy allows to read the
    created fields. *)

type ordering =
  | Strict
      (** A flow fires only after every lower-order flow of its service
          (the diagram's intended sequence). *)
  | Data_driven
      (** Any flow whose source holds the data may fire. *)

type options = {
  ordering : ordering;
  potential_reads : bool;
  granular_reads : bool;
      (** Potential reads fetch one field per transition instead of every
          readable field at once (the paper assumes "datastore interfaces
          that support querying and display of individual fields"). *)
  potential_deletes : bool;
  enforce_policy : bool;
      (** Model run-time enforcement at the datastore interface: [read]
          flows deliver only policy-permitted fields, [create]/[anon]
          flows persist only policy-permitted fields, and a fully denied
          flow is disabled. Off, the diagram executes as drawn even where
          the policy contradicts it (use {!Consistency.check} to surface
          the contradictions). *)
  services : string list option;
      (** Restrict generation to these services (e.g. Fig. 3 generates
          the Medical Service process alone). [None] = all. *)
  max_states : int;
  packed : bool;
      (** Store the explored LTS in the packed arena engine (states as
          delta-encoded word records, sharded dedup — see
          {!Mdp_lts.Lts}) instead of materialised configs. On (the
          default) a state costs a few bytes instead of hundreds; the
          resulting LTS is observationally identical. *)
  mem_budget : int option;
      (** Resident-byte budget for the packed engine: above it, sealed
          arena chunks and dedup tables spill to disk and the
          exploration completes bounded by disk rather than RAM, with
          byte-identical state numbering (see
          {!Mdp_lts.Lts.S.explore}). [None] (the default) never
          spills. Ignored by the boxed engine. *)
  spill_dir : string option;
      (** Parent directory for the spill run directory; [None] = the
          system temp directory. *)
}

val default_options : options
(** [Strict], potential reads on (coarse), deletes off, all services,
    100_000-state guard. *)

val flow_only : options
(** No policy-derived transitions: exactly the diagram's flows (the Fig. 3
    rendering mode). *)

(** {1 Compiled-step internals}

    The pieces [run] assembles, exposed for the cone-scoped incremental
    re-exploration ({!Regen}): comparing the compiled flows of two
    policies tells an edit exactly which emissions change, and stepping
    a fresh state during the incremental walk must use exactly the cold
    semantics. *)

type source_guard =
  | Always
  | Actor_has of int list  (** privacy.has variable indices *)
  | Store_holds of int * int list  (** store index, field indices *)

type compiled_flow = {
  cf_index : int;
  cf_prereqs : Mdp_prelude.Bitset.t;
      (** flow indices that must have executed (Strict) *)
  cf_guard : source_guard;
  cf_action : Action.t;
  cf_has_vars : int list;  (** privacy.has bits the action sets *)
  cf_store_write : (int * int list) option;  (** store idx, field indices *)
  cf_could_vars : int list;  (** privacy.could bits set on creation *)
}

val compile : Universe.t -> options -> compiled_flow list
(** The in-scope flows with non-empty effective field sets, in flow-index
    order — the from-flow segment of every state's successor row. *)

val flow_enabled : options -> Config.t -> compiled_flow -> bool
val fire : Config.t -> compiled_flow -> Config.t

val fresh_stamp : unit -> int
(** A new run stamp for the potential-read action memo (entries are
    per-universe; the stamp keys them to one run). *)

val readable_rows : Universe.t -> options -> int array array option
(** Per-(actor, store) readable field sets as single words
    ([.(actor).(store)]); [None] when the model has more fields than a
    word holds or potential reads are off. *)

val read_action :
  Universe.t ->
  stamp:int ->
  actor:int ->
  store:int ->
  int ->
  Action.t * Mdp_prelude.Bitset.t
(** The memoised potential-read label for a packed fresh field set (bit
    [i] = field [i]) together with the privacy.has mask it implies —
    exactly the label a cold run emits for that (actor, store, field
    set). Exposed so {!Regen}'s arithmetic walk can name recomputed read
    groups without rebuilding configurations. *)

val potential_reads_at :
  Universe.t ->
  options ->
  stamp:int ->
  readable:int ->
  actor:int ->
  store:int ->
  Config.t ->
  (Action.t * Config.t) list
(** The (actor, store) pair's potential-read emissions at the given
    configuration, in row order (fields descending under
    [granular_reads]); [readable] is the pair's word from
    {!readable_rows}. Empty when nothing fresh is readable. *)

val make_step :
  Universe.t ->
  options ->
  stamp:int ->
  compiled:compiled_flow list ->
  readable_words:int array array option ->
  Config.t ->
  (Action.t * Config.t) list
(** The successor function [run] explores with. *)

val store_classifier : Universe.t -> Action.t -> int
(** The per-store cone class of a transition label: the touched store's
    index, or -1 for store-less actions. What [run] passes to
    [Lts.explore ~label_class]. *)

val config_packer : options -> Config.t -> Config.t Mdp_lts.Lts.packer option
(** The packed-backend codec [run] explores with ([None] when [packed]
    is off or the model is too wide); the argument is the initial
    configuration, which doubles as the decode template. *)

val run :
  ?options:options ->
  ?jobs:int ->
  ?par_threshold:int ->
  ?cancel:Mdp_obs.Cancel.t ->
  Universe.t ->
  Plts.t
(** [jobs] (default 1) is the number of domains used for frontier
    exploration; the resulting LTS — state numbering included — is
    identical for every value (see {!Mdp_lts.Lts.S.explore}).
    [par_threshold] is the minimum frontier width worth fanning out
    (forwarded to [Lts.explore]; frontiers below it expand on the
    calling domain so that small models never lose to sequential).
    [cancel] aborts a runaway exploration cooperatively within one
    frontier round (forwarded to [Lts.explore]).

    @raise Mdp_obs.Cancel.Cancelled if [cancel] fires mid-run.
    @raise Mdp_lts.Lts.Too_many_states if [max_states] is exceeded. *)
