(** Population-level risk analysis.

    §III-A notes the analysis "takes the user privacy control
    requirements ... hence there is an instance for each user. The
    process can be executed with running users of the system, or with
    simulated users in the development phase." This module runs the
    disclosure analysis for a whole population of (simulated or real)
    profiles over one generated LTS and aggregates the results into a
    design-time report: how many users face which worst risk level, and
    which (actor, store) accesses drive it. *)

type spec = {
  seed : int;
  size : int;
  westin_mix : (Questionnaire.westin * float) list;
      (** Segment weights; normalised internally. Westin's surveys put
          roughly 25/55/20 across
          fundamentalists/pragmatists/unconcerned. *)
  agree_probability : float;
      (** Independent probability that a user agrees to each service. *)
}

val default_mix : (Questionnaire.westin * float) list

val simulate : spec -> Mdp_dataflow.Diagram.t -> User_profile.t list
(** Deterministic in [spec.seed]. Every user answers the questionnaire
    with their segment's baseline (no per-field overrides). *)

type hotspot = {
  actor : string;
  store : string option;
  affected : int;
      (** Users with at least one finding on this access — each user
          counted once per (actor, store), whatever the number or
          levels of their findings there. *)
  worst : Level.t;
}

type aggregate = {
  total : int;
  by_level : (Level.t * int) list;
      (** Users per worst-finding level, [None_] first. Sums to
          [total]. *)
  hotspots : hotspot list;
      (** Sorted worst level first, then reach, then (actor, store) —
          a total order, so the list is deterministic. *)
}

val analyse :
  ?matrix:Risk_matrix.t ->
  ?model:Disclosure_risk.likelihood_model ->
  Universe.t ->
  Plts.t ->
  User_profile.t list ->
  aggregate
(** The naive reference path: one full [Disclosure_risk.analyse] per
    profile. The LTS is generated once and shared; per-profile label
    annotations are overwritten on each pass and left in the last
    profile's state. *)

val classes :
  Universe.t -> User_profile.t list -> (User_profile.t * int) list
(** Profile equivalence classes: (representative, member count) in
    first-occurrence order. Two profiles are equivalent when they have
    the same sensitivity on every universe field and agreed to the same
    diagram services — everything the disclosure analysis can observe —
    so a simulated population collapses to at most
    [segments x 2^|services|] classes. The counts sum to the input
    length. *)

val analyse_compiled :
  ?matrix:Risk_matrix.t ->
  ?model:Disclosure_risk.likelihood_model ->
  ?jobs:int ->
  ?cancel:Mdp_obs.Cancel.t ->
  ?plan:Risk_plan.t ->
  ?classes:(User_profile.t * int) list ->
  Universe.t ->
  Plts.t ->
  User_profile.t list ->
  aggregate
(** The compiled engine: one {!Risk_plan.compile} pass over the LTS,
    profiles deduplicated through {!classes}, each class evaluated once
    via [Risk_plan.summary] and weighted by its size, with the classes
    fanned out over [jobs] domains (default 1) and folded into
    streaming partial counts — no per-profile reports exist at any
    point. The merge uses only sums and maxes, so the result is
    identical for every [jobs] value and byte-identical to {!analyse}
    on the same inputs. Unlike {!analyse} it leaves the LTS labels
    untouched.

    [cancel] is polled between class evaluations on every domain: a
    fired token makes each chunk stop folding within a few classes,
    the domains join normally, and the call then raises
    [Mdp_obs.Cancel.Cancelled] — no partial aggregate escapes and the
    plan/LTS remain untouched and reusable.

    [plan] and [classes] let a long-lived caller (the serve daemon)
    reuse a previously compiled risk plan and previously computed
    profile classes instead of recomputing them: [plan] must have been
    compiled from the same [u]/[lts] with the same matrix and model,
    and [classes] must be {!classes}' output for [u] and the intended
    population — when [classes] is given, [profiles] is ignored and
    [total] is the sum of the class weights. *)

(** {2 Cached class summaries and σ-delta reaggregation}

    A sensitivity edit cannot move a class whose σ already sits at the
    edited value, so a what-if over a population only needs to
    re-evaluate the classes the edit actually touches. {!prepare}
    evaluates every class once and keeps the per-class summaries keyed
    by their σ vectors; {!reaggregate} then answers a σ-override edit
    by re-evaluating only the stale classes and re-merging — the result
    is identical to a fresh {!analyse_compiled} over the edited
    profiles, because the merge is the same sums-and-maxes fold and
    classes that merge under the edit contribute their weights
    additively either way. *)

type cached

val prepare :
  ?matrix:Risk_matrix.t ->
  ?model:Disclosure_risk.likelihood_model ->
  ?jobs:int ->
  ?cancel:Mdp_obs.Cancel.t ->
  ?plan:Risk_plan.t ->
  ?classes:(User_profile.t * int) list ->
  Universe.t ->
  Plts.t ->
  User_profile.t list ->
  cached
(** Evaluate every class once (fanned over [jobs] domains) and retain
    the summaries. Same [plan]/[classes] reuse contract as
    {!analyse_compiled}. *)

val cached_aggregate : cached -> aggregate
(** The aggregate over the cached summaries — byte-identical to
    {!analyse_compiled} on the same inputs. *)

val reaggregate :
  ?jobs:int ->
  ?cancel:Mdp_obs.Cancel.t ->
  cached ->
  overrides:(Mdp_dataflow.Field.t * float) list ->
  aggregate * int * int
(** Apply a σ-override edit ([Edit.classify]'s [inv_sigma] payload: the
    changed fields with their new values, applied population-wide) and
    re-merge: [(aggregate, classes_reused, classes_reevaluated)]. A
    class is reused iff its σ already equals every override value;
    otherwise its representative is re-evaluated with the overrides
    applied. The aggregate equals a fresh {!analyse_compiled} over the
    edited profiles. The cache itself is not mutated (the edit is a
    what-if, not a commit). *)

val pp_aggregate : Format.formatter -> aggregate -> unit
