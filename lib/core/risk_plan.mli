(** Compiled disclosure-risk analysis (paper §III-A at population
    scale).

    [Disclosure_risk.analyse] recomputes profile-independent facts —
    reader sets, rogue-flow scans, actor/field index lookups — for
    every transition on every call, which makes a population sweep
    O(profiles x transitions x flows). [compile] hoists all of it into
    one pass over the LTS: per transition it resolves the action kind,
    the field and actor indices, the policy reader sets of created
    fields, the rogue-read candidate services per (actor, store), and
    the likelihood scenario structure. A profile then reduces to a
    {e view} — a σ vector indexed by field, an allowance vector indexed
    by actor, an agreement bitset indexed by diagram service — and
    per-profile evaluation is an array walk.

    Both evaluation modes reproduce the naive path bit for bit (same
    floats, same ordering, same annotations): {!analyse} returns a
    [Disclosure_risk.report] equal to what [Disclosure_risk.analyse]
    would return, and {!summary} computes exactly the per-user facts
    [Population] aggregates. *)

type t

val compile :
  ?matrix:Risk_matrix.t ->
  ?model:Disclosure_risk.likelihood_model ->
  Universe.t ->
  Plts.t ->
  t
(** One pass over the transitions (defaults match
    [Disclosure_risk.analyse]). The plan is tied to the LTS's current
    transition set: label {e annotations} may change afterwards (the
    plan itself rewrites them), but adding transitions — e.g. a
    [Pseudonym_risk] pass — invalidates it, and {!analyse} then raises
    [Invalid_argument]. *)

val slots : t -> (string * string option) array
(** The distinct (actor, store) pairs over which findings can occur —
    the hotspot keys of {!summary}'s [slot_levels], in first-occurrence
    order. *)

val matrix : t -> Risk_matrix.t

type summary = {
  worst : Level.t;  (** [Disclosure_risk.max_level] of the report. *)
  slot_levels : Level.t array;
      (** Per {!slots} entry, the profile's worst finding level on that
          (actor, store) access; [None_] = no finding there. *)
}

val summary : t -> User_profile.t -> summary
(** The per-user facts the population aggregate needs, without
    materialising a report (no witnesses, no sorting, no label
    rewriting). Safe to call concurrently from several domains on the
    same plan. *)

val analyse : t -> User_profile.t -> Disclosure_risk.report
(** Drop-in replacement for [Disclosure_risk.analyse ~matrix ~model u
    lts profile]: annotates read labels in place and returns the
    identical report. Witnesses come from a BFS tree built once per
    plan instead of one search per finding. Not domain-safe (it
    mutates labels and the cached tree).

    @raise Invalid_argument when transitions were added since
    {!compile}. *)
