(** Compiled disclosure-risk analysis (paper §III-A at population
    scale).

    [Disclosure_risk.analyse] recomputes profile-independent facts —
    reader sets, rogue-flow scans, actor/field index lookups — for
    every transition on every call, which makes a population sweep
    O(profiles x transitions x flows). [compile] hoists all of it into
    one pass over the LTS: per transition it resolves the action kind,
    the field and actor indices, the policy reader sets of created
    fields, the rogue-read candidate services per (actor, store), and
    the likelihood scenario structure. A profile then reduces to a
    {e view} — a σ vector indexed by field, an allowance vector indexed
    by actor, an agreement bitset indexed by diagram service — and
    per-profile evaluation is an array walk.

    Both evaluation modes reproduce the naive path bit for bit (same
    floats, same ordering, same annotations): {!analyse} returns a
    [Disclosure_risk.report] equal to what [Disclosure_risk.analyse]
    would return, and {!summary} computes exactly the per-user facts
    [Population] aggregates. *)

type t

val compile :
  ?matrix:Risk_matrix.t ->
  ?model:Disclosure_risk.likelihood_model ->
  Universe.t ->
  Plts.t ->
  t
(** One pass over the transitions (defaults match
    [Disclosure_risk.analyse]). The plan is tied to the LTS's current
    transition set: label {e annotations} may change afterwards (the
    plan itself rewrites them), but adding transitions — e.g. a
    [Pseudonym_risk] pass — invalidates it, and {!analyse} then raises
    [Invalid_argument]. *)

val slots : t -> (string * string option) array
(** The distinct (actor, store) pairs over which findings can occur —
    the hotspot keys of {!summary}'s [slot_levels], in first-occurrence
    order. *)

val matrix : t -> Risk_matrix.t
val model : t -> Disclosure_risk.likelihood_model

val num_entries : t -> int
(** Number of transitions the plan was compiled over. *)

val in_sync : t -> bool
(** The LTS still has exactly the compiled transition set (no
    [Pseudonym_risk] pass has appended to it). *)

val with_universe : t -> Universe.t -> t
(** Rebind the plan to an edited universe {e known} to leave every
    compiled entry valid (the incremental engine's LTS-preserving,
    report-preserving policy edits). Shares all compiled arrays. *)

val repatch_maintenance : t -> Universe.t -> t
(** Rebind to a universe whose policy differs only in Delete
    permissions (with potential deletes off): recomputes the
    maintenance-exposure flag of every read entry from the new deleter
    sets and shares everything else. The result equals a fresh
    [compile u lts] at the cost of one entry walk. *)

type summary = {
  worst : Level.t;  (** [Disclosure_risk.max_level] of the report. *)
  slot_levels : Level.t array;
      (** Per {!slots} entry, the profile's worst finding level on that
          (actor, store) access; [None_] = no finding there. *)
}

val summary : t -> User_profile.t -> summary
(** The per-user facts the population aggregate needs, without
    materialising a report (no witnesses, no sorting, no label
    rewriting). Safe to call concurrently from several domains on the
    same plan. *)

val analyse : ?grown:bool -> t -> User_profile.t -> Disclosure_risk.report
(** Drop-in replacement for [Disclosure_risk.analyse ~matrix ~model u
    lts profile]: annotates read labels in place and returns the
    identical report. Witnesses come from a BFS tree built once per
    plan instead of one search per finding. Not domain-safe (it
    mutates labels and the cached tree).

    [~grown:true] additionally accepts an LTS that has {e gained}
    transitions since {!compile} — only a [Pseudonym_risk] pass appends
    to an LTS, and its inferred-read transitions are neither findable
    nor annotated, so the report over the compiled prefix is identical
    to one produced before the pass. The witness tree must already be
    cached by an earlier in-sync [analyse] (the incremental engine's
    profile-edit path guarantees this).

    @raise Invalid_argument when transitions were added since
    {!compile} (default mode), removed (any mode), or [~grown:true]
    finds no cached witness tree. *)

(** {2 What-if delta substrate}

    One record per findable entry with the §III-A evaluation broken
    into its scenario terms, so a what-if sweep can re-level just the
    entries an edit touches without re-running {!analyse}. *)

type labeller
(** Per-universe label semantics — index lookups, reader sets, service
    ids, rogue-read candidates — the pieces {!compile} precomputes
    before walking transitions, without the transition walk. The
    cone-scoped what-if path builds one for the {e edited} universe and
    levels reachable labels directly. *)

val make_labeller : Universe.t -> labeller

type view
(** A profile reduced to dense per-index lookups (σ by field index,
    allowance by actor index, agreement by service bitset). Built
    against a plan's universe; valid for any universe sharing the
    diagram — in particular every pure policy edit. *)

val view : t -> User_profile.t -> view

val label_level :
  labeller ->
  matrix:Risk_matrix.t ->
  model:Disclosure_risk.likelihood_model ->
  view ->
  Action.t ->
  Level.t
(** The finding level a read transition with this label would get under
    {!analyse} on the labeller's universe — float-identical to the
    compiled path ({!summary}'s skip chain included). For Read labels a
    finding's level is a pure function of its label: impact from
    (actor, fields), likelihood from (provenance, deleter sets,
    diagram rogue candidates, agreement). [None_] for non-findable or
    below-threshold labels. *)

type site = {
  site_entry : int;  (** Entry index (transition order). *)
  site_slot : int;  (** Index into {!slots}. *)
  site_fields : string list;
      (** Sorted field names of the read label — the [Risk_diff]
          signature key. Interned: equal lists are shared. *)
  site_impact : float;  (** Resolved impact for the given profile. *)
  site_accidental : float;  (** Resolved accidental-access term. *)
  site_maintenance : bool;  (** Maintenance-exposure flag. *)
  site_rogue : float;  (** Resolved rogue-service term. *)
}

val finding_sites : t -> User_profile.t -> site array
(** All findable entries in transition order, evaluated for [profile].
    One label pass; safe on a grown LTS (appended transitions are not
    findable). *)

val site_level : t -> site -> maintenance:bool -> Level.t
(** Re-level one site with its maintenance flag overridden —
    float-identical to what {!analyse} computes for that entry when the
    plan's flag has that value. *)
