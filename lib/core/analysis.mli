(** End-to-end façade over the pipeline: model -> generated LTS ->
    consistency + disclosure risk + pseudonymisation risk -> report.
    This is the API the examples and the CLI drive; the individual
    analyses remain available for finer control. *)

type params = {
  options : Generate.options;
  matrix : Risk_matrix.t;
  model : Disclosure_risk.likelihood_model;
  profile : User_profile.t option;
  bindings : Pseudonym_risk.binding list;
}

type t = {
  params : params;
  universe : Universe.t;
  lts : Plts.t;  (** Annotated in place by the analyses. *)
  consistency : Consistency.gap list;
  disclosure : Disclosure_risk.report option;
      (** [None] when no profile was supplied. *)
  pseudonym : Pseudonym_risk.risk_transition list;
  plan : Risk_plan.t option;
      (** The compiled risk plan behind [disclosure], kept so
          {!run_incremental} and the what-if sweep can reuse it. *)
}

val run :
  ?options:Generate.options ->
  ?matrix:Risk_matrix.t ->
  ?model:Disclosure_risk.likelihood_model ->
  ?profile:User_profile.t ->
  ?bindings:Pseudonym_risk.binding list ->
  Mdp_dataflow.Diagram.t ->
  Mdp_policy.Policy.t ->
  t
(** @raise Invalid_argument when the policy does not validate against the
    diagram. *)

val rerun_with_policy : t -> Mdp_policy.Policy.t -> t
(** The §IV-A design loop: same model, profile, bindings and parameters;
    edited policy; everything regenerated. *)

val run_incremental : ?jobs:int -> previous:t -> Edit.t list -> t
(** The same loop, recomputing only what the edits invalidate. The
    result is byte-identical to [run] on the edited inputs (enforced by
    test/test_whatif.ml and the PR 8 bench gate): [Edit.classify]
    bounds the damage, and surviving artifacts — LTS, compiled plan
    (possibly with maintenance flags repatched), disclosure report,
    pseudonym transitions, consistency gaps — are threaded through
    unchanged. Falls back to a full [run] when the reachable transition
    structure may have changed.

    Counters (under [Mdp_obs]): [whatif/incremental_hits] when the LTS
    is reused, [whatif/invalidated_{lts,plan,classes}] for recomputed
    artifacts, all under a [phase/whatif] span.

    Like every analysis, this may re-annotate the shared LTS's labels
    in place and, when bindings change, append pseudonym transitions to
    it — [previous]'s {e report} stays valid, but re-[analyse]-ing its
    plan afterwards follows the usual grown-LTS rules.

    @raise Invalid_argument when an edit does not apply (unknown
    service, invalid policy, sensitivity out of range, ...). *)

val inputs_of : t -> Edit.inputs
(** The run's model inputs as an editable value. *)

(** {1 Structured failure}

    The generation phase can abort in two recoverable ways: the state
    guard trips ([Lts.Too_many_states]) or a cancellation token fires
    (deadline or explicit cancel). Long-lived callers — the CLI and
    the [mdpriv serve] daemon — need those as data, not as escaping
    exceptions with backtraces. *)

type failure =
  | State_limit of { limit : int; hint : string }
      (** The exploration guard tripped at [limit] states; [hint] is a
          ready-made remediation message. *)
  | Cancelled of { phase : string; deadline : bool }
      (** A cancellation token fired during [phase]; [deadline]
          distinguishes a blown budget from an explicit cancel. *)

val state_limit_hint : string
(** The standard remediation hint attached to {!State_limit} failures. *)

val failure_message : failure -> string

val run_checked :
  ?options:Generate.options ->
  ?matrix:Risk_matrix.t ->
  ?model:Disclosure_risk.likelihood_model ->
  ?profile:User_profile.t ->
  ?bindings:Pseudonym_risk.binding list ->
  ?jobs:int ->
  ?cancel:Mdp_obs.Cancel.t ->
  Mdp_dataflow.Diagram.t ->
  Mdp_policy.Policy.t ->
  (t, failure) result
(** {!run} with [Too_many_states] and [Cancel.Cancelled] converted to
    {!failure} values, plus [jobs]/[cancel] forwarded to the
    exploration. Still raises [Invalid_argument] on a policy that does
    not validate — that is caller error, not an operational failure. *)

val pp_summary : Format.formatter -> t -> unit
