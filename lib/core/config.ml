open Mdp_prelude

type t = {
  privacy : Privacy_state.t;
  stores : Bitset.t array;
  executed : Bitset.t;
}

let initial u =
  {
    privacy = Privacy_state.absolute u;
    stores =
      Array.init (Universe.nstores u) (fun _ -> Bitset.create (Universe.nfields u));
    executed = Bitset.create (max 1 (Universe.nflows u));
  }

let copy t =
  {
    privacy = Privacy_state.copy t.privacy;
    stores = Array.map Bitset.copy t.stores;
    executed = Bitset.copy t.executed;
  }

(* The generator builds successor configs copy-on-write, so configs
   reaching the same privacy state usually share bitsets (and often whole
   store arrays) physically; the [==] fast paths here and in
   [Bitset.equal] make hash-table probes near-O(1). *)
let equal a b =
  a == b
  || Privacy_state.equal a.privacy b.privacy
     && Bitset.equal a.executed b.executed
     && (a.stores == b.stores || Array.for_all2 Bitset.equal a.stores b.stores)

(* Multiply-xor combining leaves the low bits badly clustered on sparse
   bitset words, and [Hashtbl] buckets by low bits only — without a final
   avalanche step, large state spaces degenerate into a few hundred
   buckets with chains over a hundred deep. *)
let fmix h =
  let h = h lxor (h lsr 33) in
  let h = h * 0xff51afd7ed558cc in
  let h = h lxor (h lsr 33) in
  let h = h * 0xc4ceb9fe1a85ec5 in
  h lxor (h lsr 33)

let hash t =
  let h = ref (Privacy_state.hash t.privacy) in
  Array.iter (fun s -> h := (!h * 65599) lxor Bitset.hash s) t.stores;
  fmix ((!h * 65599) lxor Bitset.hash t.executed) land max_int

(* Packed-word codec: a config is exactly the payload words of its
   bitsets, laid out has / could / stores (in index order) / executed.
   The packed LTS engine stores only these words; [of_words] rebuilds a
   config from them using any same-universe config as the shape
   template (word counts and bit capacities are universe constants). *)
let nwords t =
  let acc = ref (Bitset.word_count t.privacy.has + Bitset.word_count t.privacy.could) in
  Array.iter (fun s -> acc := !acc + Bitset.word_count s) t.stores;
  !acc + Bitset.word_count t.executed

let blit_words t dst off =
  let off = Bitset.blit_words t.privacy.has dst off in
  let off = Bitset.blit_words t.privacy.could dst off in
  let off = Array.fold_left (fun off s -> Bitset.blit_words s dst off) off t.stores in
  Bitset.blit_words t.executed dst off

let of_words ~template src off =
  let pos = ref off in
  let take tmpl =
    let b = Bitset.of_words ~length:(Bitset.length tmpl) src !pos in
    pos := !pos + Bitset.word_count tmpl;
    b
  in
  let has = take template.privacy.has in
  let could = take template.privacy.could in
  let stores = Array.map take template.stores in
  let executed = take template.executed in
  { privacy = { Privacy_state.has; could }; stores; executed }

let store_has t ~store ~field = Bitset.get t.stores.(store) field
let executed t ~flow = Bitset.get t.executed flow

let pp u ppf t =
  Format.fprintf ppf "@[<v>%a" (Privacy_state.pp_compact u) t.privacy;
  Array.iteri
    (fun s contents ->
      if not (Bitset.is_empty contents) then
        Format.fprintf ppf "@,%s = {%s}" (Universe.store_name u s)
          (String.concat ", "
             (List.map
                (fun f -> Mdp_dataflow.Field.name (Universe.field_at u f))
                (Bitset.to_list contents))))
    t.stores;
  Format.fprintf ppf "@]"
