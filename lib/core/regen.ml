open Mdp_prelude

(* Cone-scoped incremental re-exploration (the ROADMAP's region-granular
   what-if step, building on PR 9's per-store cones).

   A pure ACL revocation can only *shrink* the model: deny-overrides
   means [Policy.allows] flips true->false, so effective flow fields
   shrink, fully denied flows drop out, and potential-read field sets
   shrink. No transition appears in the edited model at a state where
   the previous run had none — which makes the edited successor row of
   every previously explored state a *pointwise substitution* of the old
   row:

   - flows whose compiled form is unchanged keep their old entry;
   - flows whose effective fields changed while guard and prereqs stayed
     equal fire the new compiled flow at the old position (creates:
     their guard is [Always], so enabledness cannot move);
   - fully denied flows drop their entry;
   - a revoked (actor, store) potential-read group is recomputed from
     the new readable word, replacing the old group's consecutive block.

   Any old state carrying an affected transition has a class-[s]
   outgoing edge for an affected store [s], so it is in [s]'s recorded
   cone-source set — the per-state test for "does this row need
   substitution" is a bitset probe, and the untouched majority of the
   old LTS is copied verbatim.

   A substitution can land on a configuration the previous run never
   reached (a create writing fewer could-bits); those fresh states are
   stepped with the exact cold semantics ([Generate.make_step] under
   the edited universe).

   Two consumers:

   - {!walk}: the timed what-if path. For a Read/Write revocation a
     finding's level is a pure function of its label (impact from the
     profile and the label's actor/fields; likelihood from provenance,
     deleters — untouched by Read/Write edits — and diagram-only rogue
     candidates), so the sweep only needs the set of distinct findable
     labels reachable in the edited model. The walk is an int-BFS over
     the hybrid graph collecting exactly that.
   - {!rebuild}: the exact path. [Plts.explore] re-runs with a hybrid
     step that serves old rows from the previous LTS; the result is
     byte-identical to a cold exploration of the edited model —
     numbering, packing, spill behaviour and cone summaries included —
     for every job count. *)

type verdict =
  | Keep
  | Drop_flow
  | Subst_flow of Generate.compiled_flow
  | Subst_read of int * int  (* actor index, store index *)

type patch = {
  rp_u : Universe.t;  (* the edited universe *)
  rp_options : Generate.options;
  rp_stamp : int;
  rp_compiled : Generate.compiled_flow list;
  rp_compiled_old : Generate.compiled_flow list;
  rp_readable : int array array;  (* [||] when potential reads are off *)
  rp_readable_old : int array array;
  rp_flow_sub : (string * int, Generate.compiled_flow option) Hashtbl.t;
      (* (service, order) of an affected flow -> substitute or drop *)
  rp_read_keys : (string * string, int * int) Hashtbl.t;
      (* (actor name, store id) of a shrunk readable pair -> indices *)
  rp_classes : int list;  (* affected store classes, deduplicated *)
}

let classes p = p.rp_classes

let flow_key (cf : Generate.compiled_flow) =
  match cf.cf_action.Action.provenance with
  | Action.From_flow { service; order } -> (service, order)
  | _ -> invalid_arg "Regen.flow_key: flow action without flow provenance"

let same_flow (a : Generate.compiled_flow) (b : Generate.compiled_flow) =
  Action.equal a.cf_action b.cf_action
  && a.cf_guard = b.cf_guard
  && Bitset.equal a.cf_prereqs b.cf_prereqs
  && a.cf_has_vars = b.cf_has_vars
  && a.cf_store_write = b.cf_store_write
  && a.cf_could_vars = b.cf_could_vars

(* Substitution is exact only when the flow's enabledness is untouched:
   equal guard (creates are [Always]-guarded; a read flow's guard covers
   its effective fields, so a shrunk read never qualifies — a weakened
   guard could enable the flow at states outside the cone) and equal
   Strict prereqs. *)
let substitutable (a : Generate.compiled_flow) (b : Generate.compiled_flow) =
  a.cf_guard = b.cf_guard && Bitset.equal a.cf_prereqs b.cf_prereqs

let make_patch ~u_old ~u (options : Generate.options) =
  (* Potential deletes recompute could-bits from global reader sets per
     transition; no label-local substitution exists for them. *)
  if options.potential_deletes then None
  else begin
    let readable_pair =
      if not options.potential_reads then Some (None, None)
      else
        match
          (Generate.readable_rows u_old options, Generate.readable_rows u options)
        with
        | Some ro, Some rn -> Some (Some ro, Some rn)
        | _ -> None  (* model too wide for the word-packed read path *)
    in
    match readable_pair with
    | None -> None
    | Some (readable_old, readable_new) ->
      let ok = ref true in
      let classes = ref [] in
      let add_class c =
        if c < 0 then ok := false
        else if not (List.mem c !classes) then classes := c :: !classes
      in
      let compiled_old = Generate.compile u_old options in
      let compiled_new = Generate.compile u options in
      let by_index = Hashtbl.create 16 in
      List.iter
        (fun (cf : Generate.compiled_flow) ->
          Hashtbl.replace by_index cf.cf_index cf)
        compiled_new;
      let flow_sub = Hashtbl.create 8 in
      let seen = Hashtbl.create 16 in
      List.iter
        (fun (cf_old : Generate.compiled_flow) ->
          Hashtbl.replace seen cf_old.cf_index ();
          match Hashtbl.find_opt by_index cf_old.cf_index with
          | Some cf_new ->
            if not (same_flow cf_old cf_new) then
              if substitutable cf_old cf_new then begin
                add_class (Generate.store_classifier u cf_old.cf_action);
                Hashtbl.replace flow_sub (flow_key cf_old) (Some cf_new)
              end
              else ok := false
          | None ->
            (* fully denied: the entry drops *)
            add_class (Generate.store_classifier u_old cf_old.cf_action);
            Hashtbl.replace flow_sub (flow_key cf_old) None)
        compiled_old;
      (* A flow present only in the edited model can appear at states the
         cones never marked — not a revocation shape. *)
      List.iter
        (fun (cf : Generate.compiled_flow) ->
          if not (Hashtbl.mem seen cf.cf_index) then ok := false)
        compiled_new;
      let read_keys = Hashtbl.create 8 in
      (match (readable_old, readable_new) with
      | Some ro, Some rn ->
        Array.iteri
          (fun a row ->
            Array.iteri
              (fun s w_old ->
                let w_new = rn.(a).(s) in
                if w_new <> w_old then
                  if w_new land lnot w_old <> 0 then
                    (* readable set grew: fresh reads could appear at
                       states outside the recorded cones *)
                    ok := false
                  else begin
                    add_class s;
                    Hashtbl.replace read_keys
                      (Universe.actor_name u a, Universe.store_name u s)
                      (a, s)
                  end)
              row)
          ro
      | _ -> ());
      if not !ok then None
      else
        Some
          {
            rp_u = u;
            rp_options = options;
            rp_stamp = Generate.fresh_stamp ();
            rp_compiled = compiled_new;
            rp_compiled_old = compiled_old;
            rp_readable =
              (match readable_new with Some r -> r | None -> [||]);
            rp_readable_old =
              (match readable_old with Some r -> r | None -> [||]);
            rp_flow_sub = flow_sub;
            rp_read_keys = read_keys;
            rp_classes = !classes;
          }
  end

let verdict_of p (a : Action.t) =
  match a.Action.provenance with
  | Action.Inferred -> Keep
  | Action.From_flow { service; order } -> (
    match Hashtbl.find_opt p.rp_flow_sub (service, order) with
    | Some (Some cf) -> Subst_flow cf
    | Some None -> Drop_flow
    | None -> Keep)
  | Action.Potential -> (
    match (a.Action.kind, a.Action.store) with
    | Action.Read, Some s -> (
      match Hashtbl.find_opt p.rp_read_keys (a.Action.actor, s) with
      | Some (ai, si) -> Subst_read (ai, si)
      | None -> Keep)
    | _ -> Keep)

(* Union of the affected classes' recorded cone-source sets, as a bit
   per old state: the per-row "needs substitution" test. [None] when the
   previous exploration recorded no cones. *)
let affected_bitset p lts =
  let n = Plts.num_states lts in
  let bs = Bytes.make ((n + 7) / 8) '\000' in
  let mark src =
    let byte = src lsr 3 in
    Bytes.unsafe_set bs byte
      (Char.unsafe_chr (Char.code (Bytes.unsafe_get bs byte) lor (1 lsl (src land 7))))
  in
  let ok =
    List.for_all
      (fun c ->
        match Plts.cone_sources lts c with
        | None -> false
        | Some sources ->
          Array.iter mark sources;
          true)
      p.rp_classes
  in
  if ok then Some bs else None

let bit bs i =
  Char.code (Bytes.unsafe_get bs (i lsr 3)) land (1 lsl (i land 7)) <> 0

let strip (a : Action.t) =
  match a.Action.risk with None -> a | Some _ -> { a with risk = None }

let findable (a : Action.t) =
  a.Action.kind = Action.Read && a.Action.provenance <> Action.Inferred

(* ----- timed walk: distinct findable labels of the edited model ----- *)

module ATbl = Hashtbl.Make (Action)

module FTbl = Hashtbl.Make (struct
  type t = Config.t

  let equal = Config.equal
  let hash = Config.hash
end)

type walk = {
  wk_labels : Action.t list;
      (** The distinct findable (read, non-inferred) labels reachable in
          the edited model — annotation-free. *)
  wk_old_states : int;  (** previously explored states reached *)
  wk_source_states : int;  (** of which needed row substitution *)
  wk_fresh_states : int;  (** states the previous run never stored *)
}

(* Generic walk: exact stepping of every fresh configuration. Correct
   for any patch [make_patch] accepts — including capability-*growing*
   flow substitutions (a granted create writes more bits; its fresh
   downstream is stepped with the exact cold semantics) — but pays a
   full [step_new] per fresh state, which for a near-root revocation
   approaches the cost of a cold exploration. *)
let walk_generic p old_lts affected =
    let u = p.rp_u and options = p.rp_options in
    let step_new =
      Generate.make_step u options ~stamp:p.rp_stamp ~compiled:p.rp_compiled
        ~readable_words:
          (if options.potential_reads then Some p.rp_readable else None)
    in
    let finder = Plts.make_finder old_lts in
    let n = Plts.num_states old_lts in
    let visited = Bytes.make ((n + 7) / 8) '\000' in
    let old_queue = Queue.create () in
    let fresh_seen = FTbl.create 64 in
    let fresh_queue = Queue.create () in
    let old_states = ref 0 and source_states = ref 0 and fresh_states = ref 0 in
    let budget = p.rp_options.max_states in
    let over_budget () = !old_states + !fresh_states > budget in
    let visit_old q =
      if not (bit visited q) then begin
        Bytes.set visited (q lsr 3)
          (Char.chr
             (Char.code (Bytes.get visited (q lsr 3)) lor (1 lsl (q land 7))));
        incr old_states;
        Queue.push q old_queue
      end
    in
    let visit_fresh cfg =
      if not (FTbl.mem fresh_seen cfg) then begin
        FTbl.replace fresh_seen cfg ();
        incr fresh_states;
        Queue.push cfg fresh_queue
      end
    in
    let resolve cfg =
      match finder cfg with Some q -> visit_old q | None -> visit_fresh cfg
    in
    let fresh_labels = ATbl.create 32 in
    let add_label a = if findable a then ATbl.replace fresh_labels (strip a) () in
    (* one recompute per revoked (actor, store) pair per source row *)
    let subst_row cfg emit_keep q =
      let done_reads = ref [] in
      Plts.iter_successors old_lts q (fun label dst ->
          match verdict_of p label with
          | Keep -> emit_keep label dst
          | Drop_flow -> ()
          | Subst_flow cf ->
            add_label cf.cf_action;
            resolve (Generate.fire cfg cf)
          | Subst_read (ai, si) ->
            if not (List.mem (ai, si) !done_reads) then begin
              done_reads := (ai, si) :: !done_reads;
              List.iter
                (fun (action, dcfg) ->
                  add_label action;
                  resolve dcfg)
                (Generate.potential_reads_at u options ~stamp:p.rp_stamp
                   ~readable:p.rp_readable.(ai).(si) ~actor:ai ~store:si cfg)
            end)
    in
    let init = Config.initial u in
    resolve init;
    let aborted = ref false in
    let drain_fresh () =
      while not (Queue.is_empty fresh_queue) && not !aborted do
        let cfg = Queue.pop fresh_queue in
        List.iter
          (fun (action, dcfg) ->
            add_label action;
            resolve dcfg)
          (step_new cfg);
        if over_budget () then aborted := true
      done
    in
    (* Interleave the two queues until both drain: fresh states found
       while substituting old rows are stepped, and their successors may
       resolve back into old states. The order is immaterial — the walk
       collects a set, not a numbering. *)
    let kept =
      match Plts.interned_labels old_lts with
      | Some labels ->
        (* packed fast path: one bool per interned label replaces a
           structural check per transition *)
        let is_findable = Array.map findable labels in
        let present = Array.make (max (Array.length labels) 1) false in
        let drain_old () =
          while (not (Queue.is_empty old_queue)) && not !aborted do
            let q = Queue.pop old_queue in
            if bit affected q then begin
              incr source_states;
              let cfg = Plts.state_data old_lts q in
              subst_row cfg
                (fun label dst ->
                  add_label label;
                  visit_old dst)
                q
            end
            else
              Plts.iter_successors_lid old_lts q (fun lid dst ->
                  if is_findable.(lid) then present.(lid) <- true;
                  visit_old dst);
            if over_budget () then aborted := true
          done
        in
        let rec go () =
          if not !aborted then
            if not (Queue.is_empty old_queue) then begin
              drain_old ();
              go ()
            end
            else if not (Queue.is_empty fresh_queue) then begin
              drain_fresh ();
              go ()
            end
        in
        go ();
        let acc = ref [] in
        Array.iteri
          (fun lid seen -> if seen then acc := strip labels.(lid) :: !acc)
          present;
        !acc
      | None ->
        (* boxed backend: structural verdict per label (small models) *)
        let kept = ATbl.create 32 in
        let rec go () =
          if not !aborted then
            if not (Queue.is_empty old_queue) then begin
              let q = Queue.pop old_queue in
              if bit affected q then begin
                incr source_states;
                let cfg = Plts.state_data old_lts q in
                subst_row cfg
                  (fun label dst ->
                    if findable label then ATbl.replace kept (strip label) ();
                    visit_old dst)
                  q
              end
              else
                Plts.iter_successors old_lts q (fun label dst ->
                    if findable label then ATbl.replace kept (strip label) ();
                    visit_old dst);
              if over_budget () then aborted := true;
              go ()
            end
            else if not (Queue.is_empty fresh_queue) then begin
              drain_fresh ();
              go ()
            end
        in
        go ();
        ATbl.fold (fun a () acc -> a :: acc) kept []
    in
    if !aborted then None
    else begin
      let labels = ATbl.fold (fun a () acc -> a :: acc) fresh_labels kept in
      Some
        {
          wk_labels = labels;
          wk_old_states = !old_states;
          wk_source_states = !source_states;
          wk_fresh_states = !fresh_states;
        }
    end

(* Arithmetic pair walk: the packed fast path.

   A shrinking edit only ever *clears* bits relative to the old run, and
   the cleared bits live in a small region: the dropped fields' store
   bits (every store) and privacy.has bits (every actor). Could-bits are
   written but never read by any guard, read or label, so futures that
   differ only there are bisimilar for label collection and the walk
   quotients them away.

   Every configuration reachable in the edited model then differs from a
   unique old state — its {e twin}, reached by the same transition
   sequence — only inside the region, and only downward (bits cleared,
   never added). The walk never materialises configurations: a fresh
   state is the pair (twin's old id, assignment of the twin's region
   bits that survive), and successors come from the twin's stored edge
   row by integer arithmetic:

   - a flow edge survives iff the region part of its guard is still
     assigned (the rest held at the twin and region bits only shrink,
     so no flow appears that the twin lacked); its writes re-set region
     bits symmetrically on both sides;
   - a potential-read group's fresh set is recomputed by word ops from
     the assignment (readable & contents & ~has per dropped field), and
     the one negative dependency — clearing has-bits can {e enable}
     reads the twin never had — is covered by scanning the few
     region-relevant (actor, store) pairs not present in the twin's row.

   Pass 1 fills the twins' region truth in one sweep over the old graph
   (BFS numbering: parents precede children); pass 2 is the hybrid BFS.
   Returns [None] when the patch needs the generic walk (growing
   substitution, region or state count too wide for one word, an
   inferred label in the row space), [Some None] on budget abort. *)
let walk_fast p old_lts affected (labels : Action.t array) =
  let u = p.rp_u and options = p.rp_options in
  let nf = Universe.nfields u in
  let ns = Universe.nstores u in
  let na = Universe.nactors u in
  let n = Plts.num_states old_lts in
  let exception Ineligible in
  try
    if nf >= Sys.int_size - 1 then raise Ineligible;
    let old_by_key = Hashtbl.create 16 in
    List.iter
      (fun (cf : Generate.compiled_flow) ->
        Hashtbl.replace old_by_key (flow_key cf) cf)
      p.rp_compiled_old;
    (* ---- the dropped-field region ---- *)
    let df_mask = ref 0 in
    let add_field f = df_mask := !df_mask lor (1 lsl f) in
    Hashtbl.iter
      (fun key sub ->
        let old_cf =
          match Hashtbl.find_opt old_by_key key with
          | Some cf -> cf
          | None -> raise Ineligible
        in
        match (sub : Generate.compiled_flow option) with
        | None ->
          List.iter
            (fun v -> add_field (Universe.var_field u v))
            old_cf.Generate.cf_has_vars;
          (match old_cf.cf_store_write with
          | None -> ()
          | Some (_, fis) -> List.iter add_field fis)
        | Some new_cf ->
          (* pure shrink required: every new write must be an old one
             (grants are served by the generic walk) *)
          if
            List.exists
              (fun v -> not (List.mem v old_cf.Generate.cf_has_vars))
              new_cf.Generate.cf_has_vars
          then raise Ineligible;
          List.iter
            (fun v ->
              if not (List.mem v new_cf.Generate.cf_has_vars) then
                add_field (Universe.var_field u v))
            old_cf.Generate.cf_has_vars;
          (match (old_cf.cf_store_write, new_cf.cf_store_write) with
          | None, None -> ()
          | Some (so, fo), Some (sn, fn) when so = sn ->
            if List.exists (fun f -> not (List.mem f fo)) fn then
              raise Ineligible;
            List.iter (fun f -> if not (List.mem f fn) then add_field f) fo
          | Some (_, fo), None -> List.iter add_field fo
          | _ -> raise Ineligible))
      p.rp_flow_sub;
    Hashtbl.iter
      (fun _ (a, s) ->
        df_mask :=
          !df_mask
          lor (p.rp_readable_old.(a).(s) land lnot p.rp_readable.(a).(s)))
      p.rp_read_keys;
    let df_mask = !df_mask in
    let df_arr =
      let acc = ref [] in
      for f = nf - 1 downto 0 do
        if df_mask land (1 lsl f) <> 0 then acc := f :: !acc
      done;
      Array.of_list !acc
    in
    let dfn = Array.length df_arr in
    let df_pos = Array.make (max nf 1) (-1) in
    Array.iteri (fun k f -> df_pos.(f) <- k) df_arr;
    let rbits = (ns + na) * dfn in
    let qbits =
      let b = ref 0 in
      while (n - 1) lsr !b <> 0 do
        incr b
      done;
      !b
    in
    if rbits + qbits > Sys.int_size - 2 then raise Ineligible;
    let sbit s k = (s * dfn) + k in
    let hbit a k = (ns * dfn) + (a * dfn) + k in
    let reg_of_has_fields a fword =
      let r = ref 0 in
      for k = 0 to dfn - 1 do
        if fword land (1 lsl df_arr.(k)) <> 0 then
          r := !r lor (1 lsl hbit a k)
      done;
      !r
    in
    let reg_of_flow_writes (cf : Generate.compiled_flow) =
      let r = ref 0 in
      List.iter
        (fun v ->
          let k = df_pos.(Universe.var_field u v) in
          if k >= 0 then r := !r lor (1 lsl hbit (Universe.var_actor u v) k))
        cf.cf_has_vars;
      (match cf.cf_store_write with
      | None -> ()
      | Some (s, fis) ->
        List.iter
          (fun f ->
            let k = df_pos.(f) in
            if k >= 0 then r := !r lor (1 lsl sbit s k))
          fis);
      !r
    in
    let reg_of_guard = function
      | Generate.Always -> 0
      | Generate.Actor_has vars ->
        List.fold_left
          (fun r v ->
            let k = df_pos.(Universe.var_field u v) in
            if k >= 0 then r lor (1 lsl hbit (Universe.var_actor u v) k)
            else r)
          0 vars
      | Generate.Store_holds (s, fis) ->
        List.fold_left
          (fun r f ->
            let k = df_pos.(f) in
            if k >= 0 then r lor (1 lsl sbit s k) else r)
          0 fis
    in
    (* (actor, store) pairs whose readable set meets the region: the
       only places a read can exist at a pair but not at its twin *)
    let region_pairs = ref [] in
    let npairs = ref 0 in
    if options.Generate.potential_reads then
      for a = 0 to na - 1 do
        for s = 0 to ns - 1 do
          let rdf = p.rp_readable.(a).(s) land df_mask in
          if rdf <> 0 then begin
            region_pairs := (a, s, !npairs, rdf) :: !region_pairs;
            incr npairs
          end
        done
      done;
    let region_pairs = List.rev !region_pairs in
    if !npairs > Sys.int_size - 2 then raise Ineligible;
    (* ---- per-interned-label classification ---- *)
    let nl = Array.length labels in
    let kind = Array.make (max nl 1) 0 in
    (* 0 keep flow / 1 substitute / 2 drop / 3 potential read *)
    let guard_reg = Array.make (max nl 1) 0 in
    let wr_new_reg = Array.make (max nl 1) 0 in
    let wr_old_reg = Array.make (max nl 1) 0 in
    let subst = Array.make (max nl 1) None in
    let read_actor = Array.make (max nl 1) (-1) in
    let read_store = Array.make (max nl 1) (-1) in
    let read_fields = Array.make (max nl 1) 0 in
    let read_rdf = Array.make (max nl 1) 0 in
    let read_k = Array.make (max nl 1) (-1) in
    let read_pair = Array.make (max nl 1) (-1) in
    let pair_id = Array.make (max 1 (na * ns)) (-1) in
    List.iter
      (fun (a, s, pid, _) -> pair_id.((a * ns) + s) <- pid)
      region_pairs;
    Array.iteri
      (fun lid (a : Action.t) ->
        match a.Action.provenance with
        | Action.Inferred -> raise Ineligible
        | Action.From_flow { service; order } ->
          let key = (service, order) in
          let old_cf =
            match Hashtbl.find_opt old_by_key key with
            | Some cf -> cf
            | None -> raise Ineligible
          in
          wr_old_reg.(lid) <- reg_of_flow_writes old_cf;
          (match Hashtbl.find_opt p.rp_flow_sub key with
          | None ->
            guard_reg.(lid) <- reg_of_guard old_cf.cf_guard;
            wr_new_reg.(lid) <- wr_old_reg.(lid)
          | Some None -> kind.(lid) <- 2
          | Some (Some cf) ->
            kind.(lid) <- 1;
            subst.(lid) <- Some cf;
            guard_reg.(lid) <- reg_of_guard cf.cf_guard;
            wr_new_reg.(lid) <- reg_of_flow_writes cf)
        | Action.Potential -> (
          match (a.Action.kind, a.Action.store) with
          | Action.Read, Some sid ->
            let ai = Universe.actor_index u a.Action.actor in
            let si = Universe.store_index u sid in
            let fw =
              List.fold_left
                (fun w f -> w lor (1 lsl Universe.field_index u f))
                0 a.Action.fields
            in
            wr_old_reg.(lid) <- reg_of_has_fields ai (fw land df_mask);
            if
              options.Generate.granular_reads
              && fw land p.rp_readable.(ai).(si) = 0
            then kind.(lid) <- 2 (* revoked singleton: always drops *)
            else begin
              kind.(lid) <- 3;
              read_actor.(lid) <- ai;
              read_store.(lid) <- si;
              read_fields.(lid) <- fw;
              read_rdf.(lid) <- p.rp_readable.(ai).(si) land df_mask;
              read_pair.(lid) <- pair_id.((ai * ns) + si);
              if options.Generate.granular_reads then begin
                let f = ref 0 in
                while fw lsr !f <> 1 do
                  incr f
                done;
                read_k.(lid) <- df_pos.(!f)
              end
            end
          | _ -> raise Ineligible))
      labels;
    (* ---- pass 1: region truth of every old state ---- *)
    let twin_reg = Array.make n (-1) in
    (let cfg0 : Config.t = Plts.state_data old_lts 0 in
     let r = ref 0 in
     for k = 0 to dfn - 1 do
       let f = df_arr.(k) in
       for s = 0 to ns - 1 do
         if Bitset.get cfg0.Config.stores.(s) f then
           r := !r lor (1 lsl sbit s k)
       done;
       for a = 0 to na - 1 do
         if
           Bitset.get cfg0.Config.privacy.Privacy_state.has
             (Universe.var u ~actor:a ~field:f)
         then r := !r lor (1 lsl hbit a k)
       done
     done;
     twin_reg.(0) <- !r);
    for q = 0 to n - 1 do
      let rq = twin_reg.(q) in
      if rq >= 0 then
        Plts.iter_successors_lid old_lts q (fun lid dst ->
            if twin_reg.(dst) < 0 then
              twin_reg.(dst) <- rq lor wr_old_reg.(lid))
    done;
    (* ---- pass 2: hybrid BFS over old ids and (twin, assignment) ---- *)
    let visited = Bytes.make ((n + 7) / 8) '\000' in
    let pair_seen = Hashtbl.create 1024 in
    let old_queue = Queue.create () and pair_queue = Queue.create () in
    let old_states = ref 0
    and source_states = ref 0
    and fresh_states = ref 0 in
    let budget = options.Generate.max_states in
    let over_budget () = !old_states + !fresh_states > budget in
    let present = Array.make (max nl 1) false in
    let fresh_labels = ATbl.create 32 in
    let add_label a = if findable a then ATbl.replace fresh_labels (strip a) () in
    let emit_read a s bits =
      let action, _ =
        Generate.read_action u ~stamp:p.rp_stamp ~actor:a ~store:s bits
      in
      add_label action
    in
    let visit_old q =
      if not (bit visited q) then begin
        Bytes.set visited (q lsr 3)
          (Char.chr
             (Char.code (Bytes.get visited (q lsr 3)) lor (1 lsl (q land 7))));
        incr old_states;
        Queue.push q old_queue
      end
    in
    let visit_pair q asn =
      let key = (q lsl rbits) lor asn in
      if not (Hashtbl.mem pair_seen key) then begin
        Hashtbl.replace pair_seen key ();
        incr fresh_states;
        Queue.push key pair_queue
      end
    in
    let resolve dst asn =
      let t = twin_reg.(dst) in
      if t < 0 then raise Ineligible
      else if asn = t then visit_old dst
      else visit_pair dst asn
    in
    let get_subst lid =
      match subst.(lid) with
      | Some (cf : Generate.compiled_flow) -> cf
      | None -> assert false
    in
    let fresh_df a s asn rdf =
      let r = ref 0 in
      for k = 0 to dfn - 1 do
        let fb = 1 lsl df_arr.(k) in
        if
          rdf land fb <> 0
          && asn land (1 lsl sbit s k) <> 0
          && asn land (1 lsl hbit a k) = 0
        then r := !r lor fb
      done;
      !r
    in
    (* old ids: truth = twin; substituted rows re-point edges by the
       same arithmetic, untouched rows are copied wholesale *)
    let process_old q =
      if bit affected q then begin
        incr source_states;
        let rq = twin_reg.(q) in
        if rq < 0 then raise Ineligible;
        Plts.iter_successors_lid old_lts q (fun lid dst ->
            match kind.(lid) with
            | 0 ->
              present.(lid) <- true;
              visit_old dst
            | 2 -> ()
            | 1 ->
              let cf = get_subst lid in
              add_label cf.Generate.cf_action;
              resolve dst (rq lor wr_new_reg.(lid))
            | _ ->
              let a = read_actor.(lid) and s = read_store.(lid) in
              let fw = read_fields.(lid) in
              let fresh_new = fw land p.rp_readable.(a).(s) in
              if fresh_new = fw then begin
                present.(lid) <- true;
                visit_old dst
              end
              else if fresh_new <> 0 then begin
                emit_read a s fresh_new;
                resolve dst (rq lor reg_of_has_fields a (fresh_new land df_mask))
              end)
      end
      else
        Plts.iter_successors_lid old_lts q (fun lid dst ->
            present.(lid) <- true;
            visit_old dst)
    in
    let process_pair key =
      let q = key lsr rbits in
      let asn = key land ((1 lsl rbits) - 1) in
      let tq = twin_reg.(q) in
      let seen_pairs = ref 0 in
      Plts.iter_successors_lid old_lts q (fun lid dst ->
          match kind.(lid) with
          | 0 ->
            if guard_reg.(lid) land lnot asn = 0 then begin
              present.(lid) <- true;
              resolve dst (asn lor wr_new_reg.(lid))
            end
          | 2 -> ()
          | 1 ->
            if guard_reg.(lid) land lnot asn = 0 then begin
              let cf = get_subst lid in
              add_label cf.Generate.cf_action;
              resolve dst (asn lor wr_new_reg.(lid))
            end
          | _ ->
            let a = read_actor.(lid) and s = read_store.(lid) in
            if options.Generate.granular_reads then begin
              let k = read_k.(lid) in
              if k < 0 then begin
                (* field outside the region: fresh here iff fresh at the
                   twin, and the has-bit it sets is not tracked *)
                present.(lid) <- true;
                resolve dst asn
              end
              else if
                asn land (1 lsl sbit s k) <> 0
                && asn land (1 lsl hbit a k) = 0
              then begin
                present.(lid) <- true;
                resolve dst (asn lor (1 lsl hbit a k))
              end
            end
            else begin
              let pid = read_pair.(lid) in
              if pid >= 0 then seen_pairs := !seen_pairs lor (1 lsl pid);
              let fw = read_fields.(lid) in
              let fdf =
                if read_rdf.(lid) = 0 then 0
                else fresh_df a s asn read_rdf.(lid)
              in
              let fresh_true = fw land lnot df_mask lor fdf in
              if fresh_true = fw then begin
                present.(lid) <- true;
                resolve dst (asn lor reg_of_has_fields a fdf)
              end
              else if fresh_true <> 0 then begin
                emit_read a s fresh_true;
                resolve dst (asn lor reg_of_has_fields a fdf)
              end
            end);
      (* reads enabled here but absent from the twin's row: the twin had
         already identified the field (has-bit set), this pair has not *)
      if options.Generate.granular_reads then
        List.iter
          (fun (a, s, _, rdf) ->
            for k = 0 to dfn - 1 do
              let fb = 1 lsl df_arr.(k) in
              if
                rdf land fb <> 0
                && asn land (1 lsl sbit s k) <> 0
                && asn land (1 lsl hbit a k) = 0
                && tq land (1 lsl hbit a k) <> 0
              then begin
                emit_read a s fb;
                resolve q (asn lor (1 lsl hbit a k))
              end
            done)
          region_pairs
      else
        List.iter
          (fun (a, s, pid, rdf) ->
            if !seen_pairs land (1 lsl pid) = 0 then begin
              let fdf = fresh_df a s asn rdf in
              if fdf <> 0 then begin
                emit_read a s fdf;
                resolve q (asn lor reg_of_has_fields a fdf)
              end
            end)
          region_pairs
    in
    visit_old 0;
    let aborted = ref false in
    while
      (not !aborted)
      && not (Queue.is_empty old_queue && Queue.is_empty pair_queue)
    do
      if not (Queue.is_empty old_queue) then process_old (Queue.pop old_queue)
      else process_pair (Queue.pop pair_queue);
      if over_budget () then aborted := true
    done;
    if !aborted then Some None
    else begin
      let is_findable = Array.map findable labels in
      let acc = ref (ATbl.fold (fun a () l -> a :: l) fresh_labels []) in
      Array.iteri
        (fun lid seen ->
          if seen && is_findable.(lid) then acc := strip labels.(lid) :: !acc)
        present;
      Some
        (Some
           {
             wk_labels = !acc;
             wk_old_states = !old_states;
             wk_source_states = !source_states;
             wk_fresh_states = !fresh_states;
           })
    end
  with Ineligible -> None

let walk p old_lts =
  match affected_bitset p old_lts with
  | None -> None
  | Some affected -> (
    let fast =
      (* escape hatch for A/B checks: force the exact-stepping walk *)
      match Sys.getenv_opt "MDPRIV_REGEN_GENERIC" with
      | Some v when v <> "" -> None
      | _ -> (
        match Plts.interned_labels old_lts with
        | None -> None
        | Some labels -> walk_fast p old_lts affected labels)
    in
    match fast with
    | Some result -> result
    | None -> walk_generic p old_lts affected)

(* ----- exact rebuild: hybrid-step re-exploration ----- *)

let rebuild ?(jobs = 1) ?par_threshold ?cancel p old_lts =
  match affected_bitset p old_lts with
  | None -> None
  | Some affected ->
    let u = p.rp_u and options = p.rp_options in
    let step_new =
      Generate.make_step u options ~stamp:p.rp_stamp ~compiled:p.rp_compiled
        ~readable_words:
          (if options.potential_reads then Some p.rp_readable else None)
    in
    (* [find_state] shares scratch buffers on the packed backend; the
       parallel explorer calls [step] from several domains, so each
       domain gets its own finder. *)
    let finder_key = Domain.DLS.new_key (fun () -> Plts.make_finder old_lts) in
    let step cfg =
      let finder = Domain.DLS.get finder_key in
      match finder cfg with
      | None -> step_new cfg
      | Some q ->
        if not (bit affected q) then begin
          (* untouched row: the cold step of the edited model emits
             exactly the old entries (annotations stripped — cold labels
             are annotation-free and the packed engine interns on full
             structural equality) *)
          let acc = ref [] in
          Plts.iter_successors old_lts q (fun label dst ->
              acc := (strip label, Plts.state_data old_lts dst) :: !acc);
          List.rev !acc
        end
        else begin
          let acc = ref [] in
          let done_reads = ref [] in
          Plts.iter_successors old_lts q (fun label dst ->
              match verdict_of p label with
              | Keep -> acc := (strip label, Plts.state_data old_lts dst) :: !acc
              | Drop_flow -> ()
              | Subst_flow cf ->
                acc := (cf.cf_action, Generate.fire cfg cf) :: !acc
              | Subst_read (ai, si) ->
                if not (List.mem (ai, si) !done_reads) then begin
                  done_reads := (ai, si) :: !done_reads;
                  List.iter
                    (fun entry -> acc := entry :: !acc)
                    (Generate.potential_reads_at u options ~stamp:p.rp_stamp
                       ~readable:p.rp_readable.(ai).(si) ~actor:ai ~store:si
                       cfg)
                end);
          List.rev !acc
        end
    in
    let init = Config.initial u in
    let packing = Generate.config_packer options init in
    Some
      (Plts.explore ~max_states:options.max_states ~jobs ?par_threshold
         ?cancel ?packing ?mem_budget:options.mem_budget
         ?spill_dir:options.spill_dir
         ~label_class:(Generate.store_classifier u) ~init ~step ())
