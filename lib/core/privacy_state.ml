open Mdp_prelude

type t = { has : Bitset.t; could : Bitset.t }

let absolute u =
  { has = Bitset.create (Universe.nvars u); could = Bitset.create (Universe.nvars u) }

let copy t = { has = Bitset.copy t.has; could = Bitset.copy t.could }

let equal a b =
  a == b || (Bitset.equal a.has b.has && Bitset.equal a.could b.could)

let hash t = (Bitset.hash t.has * 65599) lxor Bitset.hash t.could

let var u ~actor ~field =
  Universe.var u ~actor:(Universe.actor_index u actor)
    ~field:(Universe.field_index u field)

let has u t ~actor ~field = Bitset.get t.has (var u ~actor ~field)
let could u t ~actor ~field = Bitset.get t.could (var u ~actor ~field)
let has_i t v = Bitset.get t.has v
let could_i t v = Bitset.get t.could v

let identified_pairs u t =
  let acc = ref [] in
  for v = Universe.nvars u - 1 downto 0 do
    if Bitset.get t.has v || Bitset.get t.could v then
      acc :=
        ( Universe.actor_name u (Universe.var_actor u v),
          Universe.field_at u (Universe.var_field u v) )
        :: !acc
  done;
  !acc

let pp_table u ppf t =
  let header =
    "actor"
    :: List.concat_map
         (fun f ->
           let n = Mdp_dataflow.Field.name f in
           [ n ^ " has"; n ^ " could" ])
         (Array.to_list (Array.init (Universe.nfields u) (Universe.field_at u)))
  in
  let table = Texttable.create ~header in
  for a = 0 to Universe.nactors u - 1 do
    let cells =
      List.concat_map
        (fun f ->
          let v = Universe.var u ~actor:a ~field:f in
          let b x = if x then "T" else "F" in
          [ b (Bitset.get t.has v); b (Bitset.get t.could v) ])
        (List.init (Universe.nfields u) Fun.id)
    in
    Texttable.add_row table (Universe.actor_name u a :: cells)
  done;
  Texttable.pp ppf table

let pp_compact u ppf t =
  let entries = ref [] in
  for v = Universe.nvars u - 1 downto 0 do
    let name () =
      Printf.sprintf "%s %s"
        (Universe.actor_name u (Universe.var_actor u v))
        (Mdp_dataflow.Field.name (Universe.field_at u (Universe.var_field u v)))
    in
    if Bitset.get t.has v then entries := (name () ^ " (has)") :: !entries
    else if Bitset.get t.could v then entries := (name () ^ " (could)") :: !entries
  done;
  match !entries with
  | [] -> Format.pp_print_string ppf "(absolute privacy)"
  | es -> Format.pp_print_string ppf (String.concat "; " es)
