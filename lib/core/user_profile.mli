(** User privacy-control requirements (paper §III-A): which services the
    user agreed to, and how sensitive each data field is to them.
    Sensitivities are quantitative (σ(d) ∈ [0, 1]); the Low/Medium/High
    questionnaire categories map onto representative values.

    The agreed services induce the allowed/non-allowed actor split:
    "an actor not associated with those services is referred to as a
    non-allowed actor", and σ(d, a) = 0 for allowed actors, σ(d)
    otherwise. *)

open Mdp_dataflow

type t

val make :
  ?sensitivities:(Field.t * float) list ->
  agreed_services:string list ->
  unit ->
  t
(** Unlisted fields have sensitivity 0 — including anon variants, which
    must be listed explicitly to be sensitive (disclosure of a
    pseudonymised value is a different, usually smaller concern than the
    raw field; §III-B covers what can be inferred from it).
    @raise Invalid_argument on a sensitivity outside [0, 1] or duplicate
    fields. *)

val of_category : [ `Low | `Medium | `High ] -> float
(** Representative σ for a questionnaire category: 0.2 / 0.55 / 0.9. *)

val agreed_services : t -> string list

val sensitivities : t -> (Field.t * float) list
(** The explicit (field, σ) pairs, in declaration order. *)

val agrees_to : t -> string -> bool
val sensitivity : t -> Field.t -> float
(** σ(d). *)

val allowed_actors : t -> Diagram.t -> string list
(** Actors appearing in the flows of agreed services. *)

val is_allowed : t -> Diagram.t -> string -> bool
val non_allowed_actors : t -> Diagram.t -> string list

val sigma : t -> Diagram.t -> actor:string -> Field.t -> float
(** σ(d, a): 0 when the actor is allowed, σ(d) otherwise. *)

val pp : Format.formatter -> t -> unit
