open Mdp_dataflow
open Mdp_prelude

type t = {
  diagram : Diagram.t;
  policy : Mdp_policy.Policy.t;
  actors : Interner.t;
  fields : Field.t array;
  field_ids : (string, int) Hashtbl.t; (* keyed by Field.name *)
  stores : Interner.t;
  flows : (Service.t * Flow.t) array;
  flow_ids : (string * int, int) Hashtbl.t; (* (service, order) *)
  (* Caches derived from the policy; rebuilt by [with_policy]. *)
  readers_cache : int list array array; (* store -> field -> actors *)
  readable_cache : int list array array; (* actor -> store -> fields *)
  deleters_cache : int list array; (* store -> actors *)
  readable_bits_cache : Bitset.t array array;
      (* actor -> store -> field bitset; the permission matrix the
         generator intersects with store contents instead of re-querying
         [Policy.allows] per state. *)
  readable_anywhere_cache : Bitset.t array;
      (* actor -> field bitset: union of [readable_bits_cache] over all
         stores — "may the actor read this field from *some* store",
         the store-independent access question §III-B asks. *)
}

let nactors t = Interner.size t.actors
let nfields t = Array.length t.fields
let nstores t = Interner.size t.stores
let nflows t = Array.length t.flows
let nvars t = nactors t * nfields t

let diagram t = t.diagram
let policy t = t.policy

let actor_index t id = Interner.find_exn t.actors id
let actor_name t i = Interner.name t.actors i

let field_index t f =
  match Hashtbl.find_opt t.field_ids (Field.name f) with
  | Some i -> i
  | None -> raise Not_found

let field_at t i = t.fields.(i)

let store_index t id = Interner.find_exn t.stores id
let store_name t i = Interner.name t.stores i

let store_at t i =
  Option.get (Diagram.find_store t.diagram (store_name t i))

let flow_index t ~service ~order =
  match Hashtbl.find_opt t.flow_ids (service, order) with
  | Some i -> i
  | None -> raise Not_found

let flow_at t i = t.flows.(i)

let var t ~actor ~field = (actor * nfields t) + field
let var_actor t v = v / nfields t
let var_field t v = v mod nfields t

let build_caches diagram policy actors fields stores =
  let na = Interner.size actors
  and nf = Array.length fields
  and ns = Interner.size stores in
  let readers = Array.init ns (fun _ -> Array.make nf []) in
  let readable = Array.init na (fun _ -> Array.make ns []) in
  let deleters = Array.make ns [] in
  for s = ns - 1 downto 0 do
    let store = Option.get (Diagram.find_store diagram (Interner.name stores s)) in
    for a = na - 1 downto 0 do
      let actor = Interner.name actors a in
      let can perm f =
        Mdp_policy.Policy.allows policy ~diagram ~actor perm ~store:store.id f
      in
      for f = nf - 1 downto 0 do
        let field = fields.(f) in
        if Datastore.mem store field then begin
          if can Mdp_policy.Permission.Read field then begin
            readers.(s).(f) <- a :: readers.(s).(f);
            readable.(a).(s) <- f :: readable.(a).(s)
          end;
          if
            can Mdp_policy.Permission.Delete field
            && not (List.mem a deleters.(s))
          then deleters.(s) <- a :: deleters.(s)
        end
      done
    done
  done;
  let readable_bits =
    Array.init na (fun a ->
        Array.init ns (fun s -> Bitset.of_list nf readable.(a).(s)))
  in
  let readable_anywhere =
    Array.init na (fun a ->
        let acc = Bitset.create nf in
        Array.iter (fun bits -> Bitset.union_into ~dst:acc bits) readable_bits.(a);
        acc)
  in
  (readers, readable, deleters, readable_bits, readable_anywhere)

let make diagram policy =
  (match Mdp_policy.Policy.validate policy diagram with
  | Ok () -> ()
  | Error msgs ->
    invalid_arg ("Universe.make: invalid policy:\n" ^ String.concat "\n" msgs));
  let actors =
    Interner.of_list (List.map (fun (a : Actor.t) -> a.id) diagram.actors)
  in
  let fields = Array.of_list (Diagram.all_fields diagram) in
  let field_ids = Hashtbl.create 16 in
  Array.iteri (fun i f -> Hashtbl.replace field_ids (Field.name f) i) fields;
  let stores =
    Interner.of_list (List.map (fun (d : Datastore.t) -> d.id) diagram.datastores)
  in
  let flows = Array.of_list (Diagram.all_flows diagram) in
  let flow_ids = Hashtbl.create 16 in
  Array.iteri
    (fun i ((svc : Service.t), (fl : Flow.t)) ->
      Hashtbl.replace flow_ids (svc.id, fl.order) i)
    flows;
  let ( readers_cache,
        readable_cache,
        deleters_cache,
        readable_bits_cache,
        readable_anywhere_cache ) =
    build_caches diagram policy actors fields stores
  in
  {
    diagram;
    policy;
    actors;
    fields;
    field_ids;
    stores;
    flows;
    flow_ids;
    readers_cache;
    readable_cache;
    deleters_cache;
    readable_bits_cache;
    readable_anywhere_cache;
  }

let with_policy t policy =
  (match Mdp_policy.Policy.validate policy t.diagram with
  | Ok () -> ()
  | Error msgs ->
    invalid_arg
      ("Universe.with_policy: invalid policy:\n" ^ String.concat "\n" msgs));
  let ( readers_cache,
        readable_cache,
        deleters_cache,
        readable_bits_cache,
        readable_anywhere_cache ) =
    build_caches t.diagram policy t.actors t.fields t.stores
  in
  {
    t with
    policy;
    readers_cache;
    readable_cache;
    deleters_cache;
    readable_bits_cache;
    readable_anywhere_cache;
  }

let readers t ~store ~field = t.readers_cache.(store).(field)
let deleters t ~store = t.deleters_cache.(store)
let readable_by t ~actor ~store = t.readable_cache.(actor).(store)
let readable_bits t ~actor ~store = t.readable_bits_cache.(actor).(store)
let readable_anywhere t ~actor = t.readable_anywhere_cache.(actor)
