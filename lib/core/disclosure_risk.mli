(** Risk of unwanted disclosure (paper §III-A).

    Impact of a transition = the maximum sensitivity σ(d, a) among the
    state variables the transition sets, measured relative to the absolute
    privacy state: for a [read]/[collect]/[disclose] that is the acting or
    receiving actor's σ over the fields; for a [create]/[anon] it ranges
    over every actor the policy then allows to read the created fields
    (the paper's σ(create) = σ(d) example). [delete] sets nothing and has
    no impact.

    Likelihood attaches to [read] transitions only ("This leaves one
    action: read that impacts the likelihood of a disclosure") and
    combines the probabilities of the paper's three uncorrelated
    scenarios: accidental access while querying, exposure during
    maintenance deletion (the actor holds the Delete permission), and
    execution of a service the user did not agree to (the actor
    participates in a non-agreed service that reads the store). How
    they combine is the model's {!combine} field — see
    {!combine_scenarios}.

    [analyse] annotates every [read] transition's label in place with a
    {!Action.Disclosure_risk} and returns the findings sorted by risk. *)

open Mdp_dataflow

type combine =
  | Sum_saturating
      (** The paper's §III-A semantics: likelihood = a + m + r, clipped
          to 1.  With aggressive models the sum can exceed 1; the clamp
          then saturates, and each saturating evaluation increments the
          [risk/likelihood_saturated] metrics counter so it is visible
          rather than silent. *)
  | Independent_union
      (** Treat the three scenarios as independent events:
          likelihood = 1 - (1-a)(1-m)(1-r).  Always in [0, 1] when the
          inputs are; never saturates.  Opt-in alternative for models
          whose probabilities are large enough to make the additive
          approximation meaningless. *)

type likelihood_model = {
  accidental_access : float;
  maintenance_exposure : float;
  rogue_service : float;
  combine : combine;
}

val default_likelihood : likelihood_model
(** 0.05 / 0.02 / 0.01, combined with {!Sum_saturating} — at these
    magnitudes the additive form differs from the union by < 0.2%. *)

val combine_scenarios :
  likelihood_model ->
  accidental:float ->
  maintenance:float ->
  rogue:float ->
  float
(** The single place the three scenario probabilities are combined.
    {!Risk_plan} evaluates likelihoods through this same function, so
    the naive and compiled engines are float-identical under every
    model, including ones where the sum crosses 1. *)

type finding = {
  src : Plts.state_id;
  dst : Plts.state_id;
  action : Action.t;  (** The annotated label. *)
  impact : float;
  likelihood : float;
  impact_level : Level.t;
  likelihood_level : Level.t;
  level : Level.t;
  witness : Action.t list;
      (** A shortest action path from the initial state to [src]. *)
}

type report = {
  non_allowed : string list;
      (** Actors outside every agreed service (§III-A's first analysis
          output). *)
  findings : finding list;
      (** Risk-labelled [read] transitions with level above [None_],
          most severe first. *)
  exposures : finding list;
      (** [create]/[anon]/[collect]/[disclose] transitions with positive
          impact: places where sensitive data becomes identifiable by a
          non-allowed actor. Not risk-labelled (no likelihood dimension),
          reported for design feedback. *)
}

val transition_impact : Universe.t -> User_profile.t -> Action.t -> float
(** Exposed for tests and ablations. *)

val transition_likelihood :
  Universe.t -> User_profile.t -> likelihood_model -> Action.t -> float
(** 0 for non-read actions. *)

val analyse :
  ?matrix:Risk_matrix.t ->
  ?model:likelihood_model ->
  Universe.t ->
  Plts.t ->
  User_profile.t ->
  report

val max_level : report -> Level.t
(** The worst finding's level ([None_] if no findings). *)

val findings_for : report -> actor:string -> finding list

val pp_finding : Format.formatter -> finding -> unit
val pp_report : Format.formatter -> report -> unit

val level_for :
  report -> actor:string -> store:string -> field:Field.t -> Level.t
(** Worst finding level among this actor's reads of the field in the
    store — the §IV-A "risk level of this event" lookup. *)
