(** Cone-scoped incremental re-exploration (region-granular what-if).

    A pure ACL revocation only {e shrinks} the generated model:
    deny-overrides means [Policy.allows] flips true->false, effective
    flow fields shrink, fully denied flows drop, and potential-read
    field sets shrink — no transition appears in the edited model at a
    previously explored state whose old successor row lacked one. The
    edited row of every old state is therefore a pointwise substitution
    of the old row, and every state that needs one carries an outgoing
    transition of an affected store class — i.e. it is in that class's
    cone-source set recorded by [Lts.explore ~label_class]. The
    untouched majority of the LTS is reused verbatim.

    {!make_patch} decides eligibility by diffing the two universes'
    compiled artifacts; {!walk} answers a what-if candidate from the
    reachable findable-label set without building an LTS; {!rebuild}
    re-explores with a hybrid step and returns an LTS byte-identical to
    a cold run of the edited model. *)

type patch
(** An eligible edit's substitution recipe: per-flow substitutes/drops,
    the revoked (actor, store) readable pairs, and the affected store
    classes. *)

val make_patch :
  u_old:Universe.t -> u:Universe.t -> Generate.options -> patch option
(** [None] when the edit is not a cone-eligible shrink: potential
    deletes on, model too wide for the word-packed read path, a changed
    flow whose guard or prereqs moved (enabledness could differ outside
    the recorded cones), a flow or readable field {e added}, or an
    affected flow without a store class. *)

val classes : patch -> int list
(** The affected store classes (deduplicated, unordered). Empty when
    the edit turned out to have no LTS effect. *)

type walk = {
  wk_labels : Action.t list;
      (** The distinct findable (read, non-inferred) labels reachable
          in the edited model, annotation-free — for a Read/Write ACL
          edit a finding's level is a pure function of its label, so
          these determine the edited report's finding signatures and
          levels. *)
  wk_old_states : int;  (** previously explored states reached *)
  wk_source_states : int;  (** of which needed row substitution *)
  wk_fresh_states : int;  (** states the previous run never stored *)
}

val walk : patch -> Plts.t -> walk option
(** Reachability walk over the hybrid graph (old rows substituted in
    place, fresh states stepped cold): the timed what-if path. Multiple
    walks over one LTS may run concurrently (each allocates its own
    finder and scratch). [None] when the previous exploration recorded
    no cones or the walk exceeds [max_states] — callers fall back to a
    full rerun. *)

val rebuild :
  ?jobs:int ->
  ?par_threshold:int ->
  ?cancel:Mdp_obs.Cancel.t ->
  patch ->
  Plts.t ->
  Plts.t option
(** Re-explore the edited model with a hybrid step serving untouched
    rows straight from the old LTS: the result is byte-identical to a
    cold [Generate.run] of the edited universe — state numbering,
    backend packing, spill behaviour and cone summaries included — for
    every job count. [None] when the previous exploration recorded no
    cones.

    @raise Mdp_lts.Lts.Too_many_states as a cold run would.
    @raise Mdp_obs.Cancel.Cancelled when [cancel] fires mid-run. *)
