open Mdp_dataflow
open Mdp_prelude

(* Everything about a transition's §III-A risk that does not depend on
   the user profile, resolved to dense indices in one pass over the LTS.
   Per-profile evaluation is then an array walk: look up σ by field
   index, test actor allowance by actor index, test service agreement by
   bitset — no diagram scans, no string lookups, no flow traversals.

   The compiled plan reproduces [Disclosure_risk.analyse] bit for bit
   (same floats, same ordering, same label annotations); the equality is
   enforced by test/test_population.ml and the population bench. *)

(* How the impact of a transition is computed (naive reference:
   [Disclosure_risk.transition_impact]). *)
type impact_plan =
  | Imp_none  (** [delete]: sets nothing, impact 0. *)
  | Imp_actor of { actor : int; fields : int array }
      (** [collect]/[read]/[disclose]: max σ(field, actor) over the
          action's fields. *)
  | Imp_readers of { fields : (int * int array) array }
      (** [create]/[anon]: per created field, the policy-permitted
          reader set; impact is the max σ over (field, reader) pairs. *)

(* The accidental-access term of the likelihood (first §III-A scenario). *)
type accidental =
  | Acc_potential  (** Potential/inferred read: [model.accidental_access]. *)
  | Acc_agreed of int
      (** Read prescribed by diagram service [i]: 0 when agreed,
          [model.rogue_service] otherwise. *)
  | Acc_by_name of string
      (** Fallback for a provenance service absent from the diagram
          (cannot arise from [Generate]); resolved against the raw
          agreed-service list. *)

type likelihood_plan = {
  lk_accidental : accidental;
  lk_maintenance : bool;
      (** Actor holds the Delete permission on the store (second
          scenario, [model.maintenance_exposure]). *)
  lk_rogue : Bitset.t option;
      (** Third scenario, potential/inferred reads only: the diagram
          services owning a [store -> actor] read flow. The term fires
          iff at least one of them is not agreed ([None] for from-flow
          reads, where the scenario is folded into [lk_accidental]). *)
  lk_actor : int;
  lk_store : int;
      (** Dense indices of the reading actor and the store, kept so
          {!repatch_maintenance} can re-derive [lk_maintenance] against
          an edited policy without touching labels. *)
}

type entry = {
  e_src : Plts.state_id;
  e_dst : Plts.state_id;
  e_kind : Action.kind;
  e_annotate : bool;
      (** Read with From_flow/Potential provenance: the label gets a
          [Disclosure_risk] annotation. *)
  e_findable : bool;
      (** Read with provenance <> Inferred: the only entries that can
          become findings. *)
  e_slot : int;  (** Hotspot slot of findable entries; -1 otherwise. *)
  e_impact : impact_plan;
  e_likelihood : likelihood_plan option;  (** [Some] for store reads. *)
}

type t = {
  u : Universe.t;
  lts : Plts.t;
  matrix : Risk_matrix.t;
  model : Disclosure_risk.likelihood_model;
  entries : entry array;  (** In [iter_transitions] order. *)
  findable : int array;  (** Indices into [entries]. *)
  slots : (string * string option) array;
      (** Slot -> (actor, store) of its findable entries — the hotspot
          key the population aggregation counts per user. *)
  entry_base : int array;
      (** State -> index of its first entry: entry of the [i]-th
          successor of [s] is [entry_base.(s) + i]. *)
  mutable witness_tree : (int * int) array option;
      (** State -> (BFS parent, entry index of the discovering
          transition); (-1, -1) for the initial state and unreachable
          states. Built on first [analyse]; not domain-safe (the
          population summary path never touches it). *)
}

let slots t = t.slots
let matrix t = t.matrix
let model t = t.model
let num_entries t = Array.length t.entries
let in_sync t = Plts.num_transitions t.lts = Array.length t.entries

let with_universe t u = { t with u }

(* Recompute the maintenance-exposure flags against [u]'s deleter sets.
   Everything else in the plan depends only on the diagram, the LTS and
   the reader sets, none of which a delete-permission edit can change
   (deleters feed exploration only under [potential_deletes]) — so the
   repatched plan is exactly what [compile u lts] would produce, at the
   cost of one entry walk instead of a label pass. Entries whose flag is
   unchanged are shared, not copied. *)
let repatch_maintenance t u =
  let nstores = Universe.nstores u in
  let nactors = Universe.nactors u in
  let deletes = Array.make (nstores * nactors) false in
  for s = 0 to nstores - 1 do
    List.iter
      (fun a -> deletes.((s * nactors) + a) <- true)
      (Universe.deleters u ~store:s)
  done;
  let entries =
    Array.map
      (fun e ->
        match e.e_likelihood with
        | Some lk ->
          let flag = deletes.((lk.lk_store * nactors) + lk.lk_actor) in
          if flag = lk.lk_maintenance then e
          else
            { e with e_likelihood = Some { lk with lk_maintenance = flag } }
        | None -> e)
      t.entries
  in
  { t with u; entries }

(* ----- label semantics (shared by [compile] and the cone path) ----- *)

(* Everything needed to turn a transition label into its impact and
   likelihood plans, precomputed once per universe. [compile] uses one
   per plan; the cone-scoped what-if path ({!Whatif}) builds one for the
   edited universe and levels the walked labels directly, without
   compiling a plan over a rebuilt LTS. *)
type labeller = {
  lb_u : Universe.t;
  lb_svc_ids : (string, int) Hashtbl.t;
  lb_no_candidates : Bitset.t;
  lb_rogue : (string * string, Bitset.t) Hashtbl.t;
      (* (store id, actor id) -> services with a Store -> Actor read
         flow: the §III-A rogue-service candidates, found once instead
         of scanning [Diagram.all_flows] per transition per profile. *)
}

let make_labeller u =
  let diagram = Universe.diagram u in
  let svc_ids = Hashtbl.create 8 in
  List.iteri
    (fun i (s : Service.t) -> Hashtbl.replace svc_ids s.id i)
    diagram.Diagram.services;
  let nservices = List.length diagram.Diagram.services in
  let no_candidates = Bitset.create nservices in
  let rogue = Hashtbl.create 16 in
  List.iter
    (fun ((svc : Service.t), (flow : Flow.t)) ->
      match (flow.src, flow.dst) with
      | Flow.Store store, Flow.Actor actor ->
        let key = (store, actor) in
        let bits =
          match Hashtbl.find_opt rogue key with
          | Some b -> b
          | None ->
            let b = Bitset.create nservices in
            Hashtbl.add rogue key b;
            b
        in
        Bitset.set bits (Hashtbl.find svc_ids svc.id)
      | _ -> ())
    (Diagram.all_flows diagram);
  { lb_u = u; lb_svc_ids = svc_ids; lb_no_candidates = no_candidates;
    lb_rogue = rogue }

let impact_plan lb (a : Action.t) =
  let u = lb.lb_u in
  match a.Action.kind with
  | Action.Collect | Action.Read | Action.Disclose ->
    Imp_actor
      {
        actor = Universe.actor_index u a.actor;
        fields = Array.of_list (List.map (Universe.field_index u) a.fields);
      }
  | Action.Create | Action.Anon ->
    let created =
      match a.kind with
      | Action.Anon -> List.map Field.anon_of a.fields
      | _ -> a.fields
    in
    let store =
      match a.store with
      | Some s -> Universe.store_index u s
      | None -> invalid_arg "transition_impact: create without store"
    in
    Imp_readers
      {
        fields =
          Array.of_list
            (List.map
               (fun f ->
                 let fi = Universe.field_index u f in
                 (fi, Array.of_list (Universe.readers u ~store ~field:fi)))
               created);
      }
  | Action.Delete -> Imp_none

let likelihood_plan lb (a : Action.t) =
  let u = lb.lb_u in
  match (a.Action.kind, a.Action.store) with
  | Action.Read, Some store_id ->
    let store = Universe.store_index u store_id in
    let actor_i = Universe.actor_index u a.actor in
    let lk_accidental =
      match a.provenance with
      | Action.Potential | Action.Inferred -> Acc_potential
      | Action.From_flow { service; _ } -> (
        match Hashtbl.find_opt lb.lb_svc_ids service with
        | Some i -> Acc_agreed i
        | None -> Acc_by_name service)
    in
    let lk_maintenance = List.mem actor_i (Universe.deleters u ~store) in
    let lk_rogue =
      match a.provenance with
      | Action.From_flow _ -> None
      | Action.Potential | Action.Inferred ->
        Some
          (Option.value
             (Hashtbl.find_opt lb.lb_rogue (store_id, a.actor))
             ~default:lb.lb_no_candidates)
    in
    Some
      {
        lk_accidental;
        lk_maintenance;
        lk_rogue;
        lk_actor = actor_i;
        lk_store = store;
      }
  | _ -> None

let compile ?(matrix = Risk_matrix.default)
    ?(model = Disclosure_risk.default_likelihood) u lts =
  Mdp_obs.Metrics.span "risk_plan/compile" @@ fun () ->
  let lb = make_labeller u in
  let impact_plan = impact_plan lb in
  let likelihood_plan = likelihood_plan lb in
  let n = Plts.num_transitions lts in
  let nstates = Plts.num_states lts in
  let entries = ref [] in
  let findable = ref [] in
  let slot_ids = Hashtbl.create 16 in
  let slot_list = ref [] in
  let nslots = ref 0 in
  let entry_base = Array.make (max nstates 1) 0 in
  let k = ref 0 in
  let prev_src = ref (-1) in
  Plts.iter_transitions lts (fun { src; label; dst } ->
      (* iter_transitions visits sources in ascending order. *)
      for s = !prev_src + 1 to src do
        entry_base.(s) <- !k
      done;
      prev_src := src;
      let e_findable =
        label.Action.kind = Action.Read
        && label.Action.provenance <> Action.Inferred
      in
      let e_annotate =
        match (label.Action.kind, label.Action.provenance) with
        | Action.Read, (Action.From_flow _ | Action.Potential) -> true
        | _ -> false
      in
      let e_slot =
        if not e_findable then -1
        else begin
          let key = (label.Action.actor, label.Action.store) in
          match Hashtbl.find_opt slot_ids key with
          | Some i -> i
          | None ->
            let i = !nslots in
            incr nslots;
            Hashtbl.add slot_ids key i;
            slot_list := key :: !slot_list;
            i
        end
      in
      if e_findable then findable := !k :: !findable;
      entries :=
        {
          e_src = src;
          e_dst = dst;
          e_kind = label.Action.kind;
          e_annotate;
          e_findable;
          e_slot;
          e_impact = impact_plan label;
          e_likelihood = likelihood_plan label;
        }
        :: !entries;
      incr k);
  for s = !prev_src + 1 to nstates - 1 do
    entry_base.(s) <- !k
  done;
  assert (!k = n);
  {
    u;
    lts;
    matrix;
    model;
    entries = Array.of_list (List.rev !entries);
    findable = Array.of_list (List.rev !findable);
    slots = Array.of_list (List.rev !slot_list);
    entry_base;
    witness_tree = None;
  }

(* ----- per-profile view ----- *)

(* The profile reduced to dense lookups: σ by field index, allowance by
   actor index, agreement by diagram-service bitset. Extracted once per
   profile (or per equivalence class) and shared by every entry. *)
type view = {
  vp_profile : User_profile.t;
  sens : float array;
  allowed : bool array;
  agreed : Bitset.t;
}

let view t profile =
  let diagram = Universe.diagram t.u in
  let nf = Universe.nfields t.u in
  let sens =
    Array.init nf (fun i ->
        User_profile.sensitivity profile (Universe.field_at t.u i))
  in
  let allowed_names = User_profile.allowed_actors profile diagram in
  let allowed =
    Array.init (Universe.nactors t.u) (fun a ->
        List.mem (Universe.actor_name t.u a) allowed_names)
  in
  let services = diagram.Diagram.services in
  let agreed = Bitset.create (List.length services) in
  List.iteri
    (fun i (s : Service.t) ->
      if User_profile.agrees_to profile s.id then Bitset.set agreed i)
    services;
  { vp_profile = profile; sens; allowed; agreed }

let eval_impact view = function
  | Imp_none -> 0.0
  | Imp_actor { actor; fields } ->
    (* σ is 0 for an allowed actor regardless of sensitivities
       ([User_profile.sigma]); the fold mirrors [Listx.max_byf]. *)
    if view.allowed.(actor) then 0.0
    else
      Array.fold_left
        (fun acc f -> Float.max acc view.sens.(f))
        0.0 fields
  | Imp_readers { fields } ->
    Array.fold_left
      (fun acc (f, readers) ->
        if Array.exists (fun a -> not view.allowed.(a)) readers then
          Float.max acc view.sens.(f)
        else acc)
      0.0 fields

let accidental_term model view = function
  | Acc_potential -> model.Disclosure_risk.accidental_access
  | Acc_agreed i ->
    if Bitset.get view.agreed i then 0.0
    else model.Disclosure_risk.rogue_service
  | Acc_by_name service ->
    if User_profile.agrees_to view.vp_profile service then 0.0
    else model.Disclosure_risk.rogue_service

let rogue_term model view = function
  | None -> 0.0
  | Some candidates ->
    if Bitset.subset candidates view.agreed then 0.0
    else model.Disclosure_risk.rogue_service

let eval_likelihood model view = function
  | None -> 0.0
  | Some lk ->
    let accidental = accidental_term model view lk.lk_accidental in
    let maintenance =
      if lk.lk_maintenance then model.Disclosure_risk.maintenance_exposure
      else 0.0
    in
    let rogue = rogue_term model view lk.lk_rogue in
    (* Shared combination point: float-identical to the naive path. *)
    Disclosure_risk.combine_scenarios model ~accidental ~maintenance ~rogue

let label_level lb ~matrix ~model view (a : Action.t) =
  let impact = eval_impact view (impact_plan lb a) in
  (* mirror [summary]'s skip chain: impact = 0 or likelihood = 0
     categorise to [None_] without the table lookups *)
  if impact <= 0.0 then Level.None_
  else begin
    let likelihood = eval_likelihood model view (likelihood_plan lb a) in
    if likelihood <= 0.0 then Level.None_
    else
      let il = Risk_matrix.impact_level matrix impact in
      let ll = Risk_matrix.likelihood_level matrix likelihood in
      Risk_matrix.level matrix ~impact:il ~likelihood:ll
  end

(* ----- population summary ----- *)

type summary = { worst : Level.t; slot_levels : Level.t array }

let summary t profile =
  let view = view t profile in
  let worst = ref Level.None_ in
  let slot_levels = Array.make (Array.length t.slots) Level.None_ in
  Array.iter
    (fun k ->
      let e = t.entries.(k) in
      let impact = eval_impact view e.e_impact in
      (* impact = 0 or likelihood = 0 categorise to [None_], which can
         never yield a finding — skip the table lookups. *)
      if impact > 0.0 then begin
        let likelihood = eval_likelihood t.model view e.e_likelihood in
        if likelihood > 0.0 then begin
          let il = Risk_matrix.impact_level t.matrix impact in
          let ll = Risk_matrix.likelihood_level t.matrix likelihood in
          let level = Risk_matrix.level t.matrix ~impact:il ~likelihood:ll in
          if Level.compare level Level.None_ > 0 then begin
            worst := Level.max !worst level;
            slot_levels.(e.e_slot) <- Level.max slot_levels.(e.e_slot) level
          end
        end
      end)
    t.findable;
  { worst = !worst; slot_levels }

(* ----- what-if delta substrate ----- *)

type site = {
  site_entry : int;
  site_slot : int;
  site_fields : string list;
  site_impact : float;
  site_accidental : float;
  site_maintenance : bool;
  site_rogue : float;
}

let finding_sites t profile =
  let view = view t profile in
  let n = Array.length t.entries in
  (* Compiled actions share field lists across transitions, so the
     distinct name lists are few — intern the sorted copies instead of
     allocating one per findable entry. *)
  let interned : (string list, string list) Hashtbl.t = Hashtbl.create 64 in
  let intern names =
    match Hashtbl.find_opt interned names with
    | Some sorted -> sorted
    | None ->
      let sorted = List.sort String.compare names in
      Hashtbl.add interned names sorted;
      sorted
  in
  let sites = ref [] in
  let k = ref 0 in
  Plts.iter_transitions t.lts (fun { label; _ } ->
      let i = !k in
      incr k;
      if i < n then begin
        let e = t.entries.(i) in
        if e.e_findable then begin
          let lk = Option.get e.e_likelihood in
          sites :=
            {
              site_entry = i;
              site_slot = e.e_slot;
              site_fields =
                intern (List.map Field.name label.Action.fields);
              site_impact = eval_impact view e.e_impact;
              site_accidental = accidental_term t.model view lk.lk_accidental;
              site_maintenance = lk.lk_maintenance;
              site_rogue = rogue_term t.model view lk.lk_rogue;
            }
            :: !sites
        end
      end);
  Array.of_list (List.rev !sites)

let site_level t s ~maintenance =
  if s.site_impact > 0.0 then begin
    let m =
      if maintenance then t.model.Disclosure_risk.maintenance_exposure
      else 0.0
    in
    let likelihood =
      Disclosure_risk.combine_scenarios t.model
        ~accidental:s.site_accidental ~maintenance:m ~rogue:s.site_rogue
    in
    if likelihood > 0.0 then begin
      let il = Risk_matrix.impact_level t.matrix s.site_impact in
      let ll = Risk_matrix.likelihood_level t.matrix likelihood in
      Risk_matrix.level t.matrix ~impact:il ~likelihood:ll
    end
    else Level.None_
  end
  else Level.None_

(* ----- full report (bit-compatible with Disclosure_risk.analyse) ----- *)

let force_witness_tree t =
  match t.witness_tree with
  | Some tree -> tree
  | None ->
    let n = Plts.num_states t.lts in
    let tree = Array.make (max n 1) (-1, -1) in
    let seen = Array.make (max n 1) false in
    let q = Queue.create () in
    let start = Plts.initial t.lts in
    seen.(start) <- true;
    Queue.push start q;
    while not (Queue.is_empty q) do
      let s = Queue.pop q in
      let base = t.entry_base.(s) in
      let i = ref 0 in
      Plts.iter_successors t.lts s (fun _label d ->
          let e = base + !i in
          incr i;
          if not seen.(d) then begin
            seen.(d) <- true;
            tree.(d) <- (s, e);
            Queue.push d q
          end)
    done;
    t.witness_tree <- Some tree;
    tree

(* Witness path to [src]: unwind the precomputed BFS tree instead of
   running a fresh [Plts.path_to] per finding. The parents are assigned
   at first discovery in the same successor order the per-finding BFS
   uses, so the paths are identical. *)
let witness_of labels tree src =
  if fst tree.(src) = -1 then []
  else begin
    let rec unwind acc s =
      match tree.(s) with
      | -1, _ -> acc
      | prev, e -> unwind (labels.(e) :: acc) prev
    in
    unwind [] src
  end

let analyse ?(grown = false) t profile =
  let nt = Plts.num_transitions t.lts in
  let n = Array.length t.entries in
  if (if grown then nt < n else nt <> n) then
    invalid_arg "Risk_plan.analyse: LTS changed since compile";
  (* A grown LTS only ever gains [Pseudonym_risk]'s inferred-read
     transitions, which the report skips (not findable, not annotated) —
     but the witness tree cannot be rebuilt over the appended edges, so
     it must have been cached by an in-sync [analyse] first. *)
  if grown && nt > n && t.witness_tree = None then
    invalid_arg "Risk_plan.analyse: no cached witness tree for grown LTS";
  let view = view t profile in
  let imp = Array.make n 0.0 in
  let lik = Array.make n 0.0 in
  Array.iteri
    (fun k e ->
      imp.(k) <- eval_impact view e.e_impact;
      lik.(k) <- eval_likelihood t.model view e.e_likelihood)
    t.entries;
  (* Annotate read labels in place, exactly like the naive pass;
     map_labels visits non-inferred transitions in the same order
     entries were compiled. Appended Inferred (§III-B) labels live
     inside their source state's successor bucket — mid-sweep, not at
     the end — so they are recognised by provenance (only the pseudonym
     pass creates Inferred actions, always after compile) rather than by
     index, and pass through without consuming an entry slot. *)
  let labels = Array.make (max n 1) None in
  let counter = ref 0 in
  Plts.map_labels t.lts (fun { label; _ } ->
      if grown && label.Action.provenance = Action.Inferred then label
      else begin
        let k = !counter in
        incr counter;
        let label' =
          if t.entries.(k).e_annotate then
            Action.with_risk label
              (Risk_matrix.assess t.matrix ~impact:imp.(k)
                 ~likelihood:lik.(k))
          else label
        in
        labels.(k) <- Some label';
        label'
      end);
  if !counter <> n then
    invalid_arg "Risk_plan.analyse: grown LTS has non-inferred new transitions";
  let labels = Array.map (fun l -> Option.get l) labels in
  let tree = force_witness_tree t in
  let findings = ref [] in
  let exposures = ref [] in
  Array.iteri
    (fun k e ->
      let finding () =
        let impact = imp.(k) and likelihood = lik.(k) in
        let impact_level = Risk_matrix.impact_level t.matrix impact in
        let likelihood_level = Risk_matrix.likelihood_level t.matrix likelihood in
        let level =
          Risk_matrix.level t.matrix ~impact:impact_level
            ~likelihood:likelihood_level
        in
        {
          Disclosure_risk.src = e.e_src;
          dst = e.e_dst;
          action = labels.(k);
          impact;
          likelihood;
          impact_level;
          likelihood_level;
          level;
          witness = witness_of labels tree e.e_src;
        }
      in
      match e.e_kind with
      | Action.Read ->
        if e.e_findable then begin
          let f = finding () in
          if Level.compare f.Disclosure_risk.level Level.None_ > 0 then
            findings := f :: !findings
        end
      | Action.Collect | Action.Create | Action.Disclose | Action.Anon ->
        if imp.(k) > 0.0 then exposures := finding () :: !exposures
      | Action.Delete -> ())
    t.entries;
  let by_severity (a : Disclosure_risk.finding) (b : Disclosure_risk.finding) =
    match Level.compare b.level a.level with
    | 0 -> Float.compare b.impact a.impact
    | c -> c
  in
  {
    Disclosure_risk.non_allowed =
      User_profile.non_allowed_actors profile (Universe.diagram t.u);
    findings = List.sort by_severity !findings;
    exposures = List.sort by_severity !exposures;
  }
