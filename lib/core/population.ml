open Mdp_dataflow
module Prng = Mdp_prelude.Prng
module Listx = Mdp_prelude.Listx
module Parallel = Mdp_prelude.Parallel

type spec = {
  seed : int;
  size : int;
  westin_mix : (Questionnaire.westin * float) list;
  agree_probability : float;
}

let default_mix =
  [
    (Questionnaire.Fundamentalist, 0.25);
    (Questionnaire.Pragmatist, 0.55);
    (Questionnaire.Unconcerned, 0.20);
  ]

let pick_segment rng mix =
  let total = Listx.sum_byf snd mix in
  let x = Prng.float rng total in
  let rec go acc = function
    | [ (w, _) ] -> w
    | (w, p) :: rest -> if x < acc +. p then w else go (acc +. p) rest
    | [] -> invalid_arg "Population: empty westin mix"
  in
  go 0.0 mix

let simulate spec diagram =
  if spec.westin_mix = [] then invalid_arg "Population.simulate: empty mix";
  let rng = Prng.create ~seed:spec.seed in
  let services = List.map (fun (s : Service.t) -> s.id) diagram.Diagram.services in
  List.init spec.size (fun _ ->
      let segment = pick_segment rng spec.westin_mix in
      let agreed =
        List.filter (fun _ -> Prng.float rng 1.0 < spec.agree_probability) services
      in
      Questionnaire.profile diagram segment ~agreed_services:agreed ~answers:[])

type hotspot = {
  actor : string;
  store : string option;
  affected : int;
  worst : Level.t;
}

type aggregate = {
  total : int;
  by_level : (Level.t * int) list;
  hotspots : hotspot list;
}

(* Shared by the naive and compiled paths so that equal hotspot sets
   render identically: worst level first, then reach, then the (actor,
   store) key — a total order, so ties cannot depend on hash-table or
   slot enumeration order. *)
let sort_hotspots =
  List.sort (fun a b ->
      match Level.compare b.worst a.worst with
      | 0 -> (
        match Int.compare b.affected a.affected with
        | 0 -> compare (a.actor, a.store) (b.actor, b.store)
        | c -> c)
      | c -> c)

let level_order = [ Level.None_; Level.Low; Level.Medium; Level.High ]

let analyse ?matrix ?model u lts profiles =
  let level_counts = Hashtbl.create 4 in
  let hotspot_tbl = Hashtbl.create 16 in
  List.iter
    (fun profile ->
      let report = Disclosure_risk.analyse ?matrix ?model u lts profile in
      let worst = Disclosure_risk.max_level report in
      Hashtbl.replace level_counts worst
        (1 + Option.value (Hashtbl.find_opt level_counts worst) ~default:0);
      (* Each user counts at most once per (actor, store) access, at
         the worst level of their findings on it — findings at two
         levels on the same access are still one affected user. *)
      let per_user = Hashtbl.create 8 in
      List.iter
        (fun (f : Disclosure_risk.finding) ->
          let key = (f.action.Action.actor, f.action.Action.store) in
          let worst_here =
            Option.value (Hashtbl.find_opt per_user key) ~default:Level.None_
          in
          Hashtbl.replace per_user key (Level.max worst_here f.level))
        report.findings;
      Hashtbl.iter
        (fun key level ->
          let affected, worst_so_far =
            Option.value
              (Hashtbl.find_opt hotspot_tbl key)
              ~default:(0, Level.None_)
          in
          Hashtbl.replace hotspot_tbl key
            (affected + 1, Level.max worst_so_far level))
        per_user)
    profiles;
  let by_level =
    List.filter_map
      (fun l ->
        Option.map (fun c -> (l, c)) (Hashtbl.find_opt level_counts l))
      level_order
  in
  let hotspots =
    Hashtbl.fold
      (fun (actor, store) (affected, worst) acc ->
        { actor; store; affected; worst } :: acc)
      hotspot_tbl []
    |> sort_hotspots
  in
  { total = List.length profiles; by_level; hotspots }

(* ----- equivalence classes ----- *)

(* Within one universe, everything the analysis reads off a profile is
   (a) its sensitivity on each universe field and (b) which diagram
   services it agreed to (allowance, σ zeroing and the likelihood
   scenarios all derive from those). Profiles equal on both are
   indistinguishable, so a simulated population — |segments| baselines
   x subsets of the service list — collapses to at most
   |segments| x 2^|services| classes regardless of size. *)
let classes u profiles =
  let diagram = Universe.diagram u in
  let svc_pos = Hashtbl.create 8 in
  List.iteri
    (fun i (s : Service.t) -> Hashtbl.replace svc_pos s.id i)
    diagram.Diagram.services;
  let nf = Universe.nfields u in
  let key p =
    let sens =
      List.init nf (fun i ->
          User_profile.sensitivity p (Universe.field_at u i))
    in
    let agreed =
      List.sort_uniq Int.compare
        (List.filter_map
           (fun s -> Hashtbl.find_opt svc_pos s)
           (User_profile.agreed_services p))
    in
    (sens, agreed)
  in
  let counts = Hashtbl.create 64 in
  let order = ref [] in
  List.iter
    (fun p ->
      let k = key p in
      match Hashtbl.find_opt counts k with
      | Some r -> incr r
      | None ->
        let r = ref 1 in
        Hashtbl.add counts k r;
        order := (p, r) :: !order)
    profiles;
  List.rev_map (fun (p, r) -> (p, !r)) !order

(* ----- compiled + parallel aggregation ----- *)

let analyse_compiled ?matrix ?model ?(jobs = 1) ?cancel ?plan
    ?classes:precomputed u lts profiles =
  Mdp_obs.Metrics.span "population/analyse_compiled" @@ fun () ->
  (match cancel with None -> () | Some c -> Mdp_obs.Cancel.check c);
  let plan =
    match plan with
    | Some p -> p
    | None -> Risk_plan.compile ?matrix ?model u lts
  in
  let cls_list =
    match precomputed with Some c -> c | None -> classes u profiles
  in
  let cls = Array.of_list cls_list in
  let total = Listx.sum_by snd cls_list in
  Mdp_obs.Metrics.add "population/profiles" total;
  Mdp_obs.Metrics.add "population/classes" (Array.length cls);
  let nslots = Array.length (Risk_plan.slots plan) in
  (* Per-chunk partials fold classes as they are evaluated — no
     per-profile reports are ever materialised. The merge below uses
     only sums and maxes, so the aggregate is identical for every
     [jobs] (and to the naive per-profile path). *)
  let parts =
    Parallel.map_chunks ~jobs (Array.length cls) (fun lo hi ->
        let counts = Array.make 4 0 in
        let affected = Array.make (max nslots 1) 0 in
        let worst = Array.make (max nslots 1) Level.None_ in
        let c = ref lo in
        (* Every domain polls the shared token between class
           evaluations and simply stops folding when it fires — no
           exception ever crosses a domain boundary; the caller raises
           after the join, once, below. *)
        while
          !c < hi
          && not
               (match cancel with
               | None -> false
               | Some tok -> !c land 63 = 0 && Mdp_obs.Cancel.cancelled tok)
        do
          let profile, weight = cls.(!c) in
          let s = Risk_plan.summary plan profile in
          let r = Level.rank s.Risk_plan.worst in
          counts.(r) <- counts.(r) + weight;
          Array.iteri
            (fun i lvl ->
              if Level.compare lvl Level.None_ > 0 then begin
                affected.(i) <- affected.(i) + weight;
                worst.(i) <- Level.max worst.(i) lvl
              end)
            s.Risk_plan.slot_levels;
          incr c
        done;
        Mdp_obs.Metrics.add "population/class_evals" (!c - lo);
        (counts, affected, worst))
  in
  (match cancel with None -> () | Some c -> Mdp_obs.Cancel.check c);
  Mdp_obs.Metrics.span "population/merge" @@ fun () ->
  let counts = Array.make 4 0 in
  let affected = Array.make (max nslots 1) 0 in
  let worst = Array.make (max nslots 1) Level.None_ in
  List.iter
    (fun (c, a, w) ->
      Array.iteri (fun i v -> counts.(i) <- counts.(i) + v) c;
      Array.iteri (fun i v -> affected.(i) <- affected.(i) + v) a;
      Array.iteri (fun i v -> worst.(i) <- Level.max worst.(i) v) w)
    parts;
  let by_level =
    List.filter_map
      (fun l ->
        let c = counts.(Level.rank l) in
        if c > 0 then Some (l, c) else None)
      level_order
  in
  let hotspots =
    Array.to_list
      (Array.mapi
         (fun i (actor, store) ->
           { actor; store; affected = affected.(i); worst = worst.(i) })
         (Risk_plan.slots plan))
    |> List.filter (fun h -> h.affected > 0)
    |> sort_hotspots
  in
  { total; by_level; hotspots }

(* ----- cached class summaries + σ-delta reaggregation ----- *)

type cached = {
  ca_u : Universe.t;
  ca_plan : Risk_plan.t;
  ca_classes : (User_profile.t * int) array;
  ca_sigma : float array array;
      (* per class, σ by universe field index — the reuse key *)
  ca_summaries : Risk_plan.summary array;
}

(* Shared merge: per-class summaries, in class order, folded with the
   same sums/maxes/filters as [analyse_compiled]'s chunk merge — so the
   aggregate is identical to what that path produces from the same
   classes (summation order cannot matter, and [sort_hotspots] is a
   total order). *)
let aggregate_of plan cls summaries =
  let nslots = Array.length (Risk_plan.slots plan) in
  let counts = Array.make 4 0 in
  let affected = Array.make (max nslots 1) 0 in
  let worst = Array.make (max nslots 1) Level.None_ in
  Array.iteri
    (fun c (_, weight) ->
      let s = summaries.(c) in
      let r = Level.rank s.Risk_plan.worst in
      counts.(r) <- counts.(r) + weight;
      Array.iteri
        (fun i lvl ->
          if Level.compare lvl Level.None_ > 0 then begin
            affected.(i) <- affected.(i) + weight;
            worst.(i) <- Level.max worst.(i) lvl
          end)
        s.Risk_plan.slot_levels)
    cls;
  let by_level =
    List.filter_map
      (fun l ->
        let c = counts.(Level.rank l) in
        if c > 0 then Some (l, c) else None)
      level_order
  in
  let hotspots =
    Array.to_list
      (Array.mapi
         (fun i (actor, store) ->
           { actor; store; affected = affected.(i); worst = worst.(i) })
         (Risk_plan.slots plan))
    |> List.filter (fun h -> h.affected > 0)
    |> sort_hotspots
  in
  { total = Array.fold_left (fun acc (_, w) -> acc + w) 0 cls;
    by_level; hotspots }

let summaries_for ?(jobs = 1) ?cancel plan cls eval =
  let n = Array.length cls in
  let out = Array.make (max n 1) { Risk_plan.worst = Level.None_;
                                   slot_levels = [||] } in
  let parts =
    Parallel.map_chunks ~jobs n (fun lo hi ->
        List.init (hi - lo) (fun j ->
            (match cancel with
            | Some tok when (lo + j) land 63 = 0 -> Mdp_obs.Cancel.check tok
            | _ -> ());
            eval plan (lo + j)))
  in
  let k = ref 0 in
  List.iter
    (List.iter (fun s ->
         out.(!k) <- s;
         incr k))
    parts;
  out

let prepare ?matrix ?model ?(jobs = 1) ?cancel ?plan ?classes:precomputed u
    lts profiles =
  Mdp_obs.Metrics.span "population/prepare" @@ fun () ->
  let plan =
    match plan with
    | Some p -> p
    | None -> Risk_plan.compile ?matrix ?model u lts
  in
  let cls_list =
    match precomputed with Some c -> c | None -> classes u profiles
  in
  let cls = Array.of_list cls_list in
  let nf = Universe.nfields u in
  let sigma =
    Array.map
      (fun (p, _) ->
        Array.init nf (fun i ->
            User_profile.sensitivity p (Universe.field_at u i)))
      cls
  in
  let summaries =
    summaries_for ~jobs ?cancel plan cls (fun plan c ->
        Risk_plan.summary plan (fst cls.(c)))
  in
  Mdp_obs.Metrics.add "population/class_evals" (Array.length cls);
  { ca_u = u; ca_plan = plan; ca_classes = cls; ca_sigma = sigma;
    ca_summaries = summaries }

let cached_aggregate c = aggregate_of c.ca_plan c.ca_classes c.ca_summaries

let override_profile overrides p =
  let existing = User_profile.sensitivities p in
  let overridden =
    List.map
      (fun (f, v) ->
        match List.assoc_opt f overrides with
        | Some v' -> (f, v')
        | None -> (f, v))
      existing
  in
  let fresh =
    List.filter
      (fun (f, _) -> not (List.mem_assoc f existing))
      overrides
  in
  User_profile.make
    ~sensitivities:(overridden @ fresh)
    ~agreed_services:(User_profile.agreed_services p)
    ()

let reaggregate ?(jobs = 1) ?cancel c ~overrides =
  Mdp_obs.Metrics.span "population/reaggregate" @@ fun () ->
  let u = c.ca_u in
  let idx =
    List.map (fun (f, v) -> (Universe.field_index u f, v)) overrides
  in
  (* a class whose σ already sits at every override value is untouched:
     the edited representative is indistinguishable from the cached one *)
  let stale =
    Array.map
      (fun sg -> List.exists (fun (i, v) -> sg.(i) <> v) idx)
      c.ca_sigma
  in
  let stale_ids =
    Array.to_list
      (Array.of_seq
         (Seq.filter_map
            (fun i -> if stale.(i) then Some i else None)
            (Seq.init (Array.length stale) Fun.id)))
  in
  let stale_arr = Array.of_list stale_ids in
  let fresh =
    summaries_for ~jobs ?cancel c.ca_plan
      (Array.map (fun i -> c.ca_classes.(i)) stale_arr)
      (fun plan j ->
        let p, _ = c.ca_classes.(stale_arr.(j)) in
        Risk_plan.summary plan (override_profile overrides p))
  in
  Mdp_obs.Metrics.add "population/class_evals" (Array.length stale_arr);
  let summaries = Array.copy c.ca_summaries in
  Array.iteri (fun j i -> summaries.(i) <- fresh.(j)) stale_arr;
  let reused = Array.length c.ca_classes - Array.length stale_arr in
  ( aggregate_of c.ca_plan c.ca_classes summaries,
    reused,
    Array.length stale_arr )

let pp_aggregate ppf agg =
  Format.fprintf ppf "@[<v>%d users:@," agg.total;
  List.iter
    (fun (l, c) -> Format.fprintf ppf "  worst level %a: %d user(s)@," Level.pp l c)
    agg.by_level;
  Format.fprintf ppf "hotspots:@,";
  List.iter
    (fun h ->
      Format.fprintf ppf "  %s%s: %d user(s), worst %a@," h.actor
        (match h.store with Some s -> " on " ^ s | None -> "")
        h.affected Level.pp h.worst)
    agg.hotspots;
  Format.fprintf ppf "@]"
