open Mdp_dataflow

type t = {
  agreed_services : string list;
  sensitivities : (Field.t * float) list;
}

let make ?(sensitivities = []) ~agreed_services () =
  List.iter
    (fun (f, s) ->
      if s < 0.0 || s > 1.0 then
        invalid_arg
          (Printf.sprintf "User_profile.make: sensitivity %g of %s outside [0,1]"
             s (Field.name f)))
    sensitivities;
  (match Mdp_prelude.Listx.find_duplicate (fun (f, _) -> Field.name f) sensitivities with
  | Some f -> invalid_arg (Printf.sprintf "User_profile.make: duplicate field %s" f)
  | None -> ());
  { agreed_services; sensitivities }

let of_category = function `Low -> 0.2 | `Medium -> 0.55 | `High -> 0.9

let agreed_services t = t.agreed_services
let sensitivities t = t.sensitivities
let agrees_to t svc = List.mem svc t.agreed_services

let sensitivity t f =
  match List.find_opt (fun (f', _) -> Field.equal f f') t.sensitivities with
  | Some (_, s) -> s
  | None -> 0.0

let allowed_actors t diagram =
  Mdp_prelude.Listx.dedup
    (List.concat_map
       (fun svc ->
         match Diagram.find_service diagram svc with
         | Some s -> Service.actors s
         | None -> [])
       t.agreed_services)

let is_allowed t diagram actor = List.mem actor (allowed_actors t diagram)

let non_allowed_actors t diagram =
  let allowed = allowed_actors t diagram in
  List.filter_map
    (fun (a : Actor.t) -> if List.mem a.id allowed then None else Some a.id)
    diagram.Diagram.actors

let sigma t diagram ~actor f =
  if is_allowed t diagram actor then 0.0 else sensitivity t f

let pp ppf t =
  Format.fprintf ppf "agreed: {%s}; sensitivities: %s"
    (String.concat ", " t.agreed_services)
    (String.concat ", "
       (List.map
          (fun (f, s) -> Printf.sprintf "%s=%g" (Field.name f) s)
          t.sensitivities))
