(** Typed model edits and their invalidation impact.

    The paper's §IV-A case study is an {e edit loop}: analyse, change
    one ACL, re-analyse. This module gives that loop a first-class
    vocabulary — ACL grants/revocations, flow additions/removals, field
    sensitivity changes, service (dis)agreement, anonymisation-binding
    changes — plus the impact classifier [Analysis.run_incremental]
    uses to decide which artifacts of the previous run (LTS, compiled
    risk plan, per-profile evaluation, population classes, pseudonym
    pass, consistency gaps) survive the edit. *)

open Mdp_dataflow
open Mdp_policy

type t =
  | Grant of Acl.entry  (** Append an ACL entry (either effect). *)
  | Revoke of {
      subject : Acl.subject;
      store : string;
      fields : Field.t list option;  (** [None] = all fields. *)
      perms : Permission.t list;
    }  (** Deny-overrides revocation ([Policy.revoke]). *)
  | Add_flow of { service : string; flow : Flow.t }
  | Remove_flow of { service : string; order : int }
  | Set_sensitivity of Field.t * float  (** Set σ(d) for one field. *)
  | Set_agreement of { service : string; agreed : bool }
  | Set_bindings of Pseudonym_risk.binding list
      (** Replace the anonymisation-release binding set (§III-B). *)

(** The editable model inputs, as one value. *)
type inputs = {
  diagram : Diagram.t;
  policy : Policy.t;
  profile : User_profile.t option;
  bindings : Pseudonym_risk.binding list;
}

val apply : inputs -> t -> (inputs, string) result
(** Apply one edit, re-validating the edited artifact (policy against
    the diagram, diagram invariants, sensitivity bounds). Unchanged
    components are returned physically equal, which is what
    {!classify} keys on. *)

val apply_all : inputs -> t list -> (inputs, string) result
(** Left-to-right; stops at the first error. *)

(** Which artifacts of a previous run an edit invalidates. Each flag is
    conservative: [false] guarantees the artifact is byte-identical to
    what a cold run on the edited inputs would produce. *)
type invalidation = {
  inv_lts : bool;
      (** Reachable transition structure may differ: re-explore (and
          with it everything downstream). *)
  inv_cone : bool;
      (** Set alongside [inv_lts] when the damage is a pure
          policy-shrink candidate for cone-scoped re-exploration: the
          diagram is unchanged, bindings are empty, and only concrete
          ACL permissions moved. Candidacy only — {!Regen.make_patch}
          makes the final eligibility call from the compiled artifacts
          and falls back to a cold run when it declines. *)
  inv_plan : bool;
      (** Compiled risk-plan entries stale (today: deleter sets
          changed — repatchable without recompiling). *)
  inv_risk : bool;  (** Per-profile risk report must be re-evaluated. *)
  inv_classes : bool;
      (** Population equivalence classes invalidated (field/service
          inventory changed). *)
  inv_sigma : (Field.t * float) list option;
      (** [Some overrides] when the only profile change is per-field
          sensitivity (agreed services identical): the changed fields
          with their new values. Population aggregates can then
          re-evaluate only the equivalence classes whose σ actually
          moved ({!Population.reaggregate}) instead of tripping
          [inv_classes]. *)
  inv_pseudonym : bool;  (** Pseudonym pass must re-run. *)
  inv_consistency : bool;  (** Consistency gaps must be recomputed. *)
}

val nothing : invalidation
val everything : invalidation

val classify :
  options:Generate.options -> before:inputs -> after:inputs -> invalidation
(** Compare two input sets (typically [before] and [apply_all before
    edits]) and bound the damage. The interesting judgements:

    - a policy edit whose concrete permission relation is unchanged
      ([Policy.diff] empty) invalidates nothing;
    - Delete-permission edits preserve the LTS when potential deletes
      are off — only the maintenance-exposure flags of the risk plan
      (and the report) change, and not even those when the store-level
      deleter sets are unchanged;
    - a Read grant/revocation on a field that can never reach the
      store's contents (no active, policy-permitted create/anon flow
      writes it) is invisible to the LTS and the report;
    - Write edits are invisible to the LTS when enforcement is off, or
      when the affected actor writes no flow carrying the field;
    - any concrete policy change under active anonymisation bindings
      invalidates everything (the pass reads Read permissions and grows
      the LTS);
    - profile edits never invalidate the LTS or the plan;
    - diagram edits invalidate everything. *)

val writable_fields :
  options:Generate.options ->
  Diagram.t ->
  Policy.t ->
  string ->
  Field.t list
(** Fields that can ever reach the store's contents (with duplicates);
    the Read-edit preservation test above, exposed for the sweep
    driver. *)

val deleter_sets : Diagram.t -> Policy.t -> string list list
(** Per datastore (in diagram order), the actors holding Delete on any
    of its fields — the §III-A maintenance-exposure relation the
    Delete-edit delta compares before/after. *)

(** {2 CLI specs}

    Concrete syntax used by [mdpriv whatif --edit] and the serve
    protocol: [grant:SUBJ:PERMS:STORE[:FIELDS]],
    [revoke:SUBJ:PERMS:STORE[:FIELDS]], [flow-:SERVICE:ORDER],
    [flow+:SERVICE:ORDER:SRC>DST:FIELDS[:PURPOSE]] (nodes as [user],
    [actor.NAME], [store.NAME]), [sensitivity:FIELD=V],
    [agree:+SERVICE], [agree:-SERVICE]. [SUBJ] is an actor id or
    [role.NAME]; [PERMS] and [FIELDS] are comma-separated. *)

val parse : string -> (t, string) result
val parse_all : string list -> (t list, string) result

val pp : Format.formatter -> t -> unit
(** Canonical rendering; the inverse of {!parse} for parseable edits
    (used as serve cache-key material). Identifiers containing the
    spec's separator characters ([:] [,] [=] [>]), whitespace, a double
    quote or a backslash — or empty identifiers — are double-quoted
    with backslash escapes, and {!parse} unquotes them, so
    [parse (to_string e) = Ok e] for every edit except [Set_bindings]
    and deny-effect [Grant]s (which have no spec syntax). *)

val to_string : t -> string

val canonical_batch : t list -> t list
(** Canonical representative of an edit batch under semantic
    equivalence: profile edits shadowed by a later edit on the same
    target (same σ field, same agreement service, any binding set) are
    dropped, adjacent structurally equal ACL edits are deduplicated,
    and independent edits — ACL/ACL pairs, flow edits on different
    services, profile edits on different targets, profile edits against
    anything — are sorted by their printed form. Two batches that are
    permutations of one another up to these commutations canonicalise
    identically, so serve can key its what-if result cache on the
    canonical form without a vacuous or reordered edit splitting (or
    wrongly sharing) cache entries. *)
