(** Interactive what-if sweeps: the batched form of the §IV-A edit
    loop.

    {!prepare} digests a profile-bearing {!Analysis.t} once — every
    findable entry's scenario terms ({!Risk_plan.finding_sites}),
    interned finding signatures, per-(actor, store) slot indices — and
    {!eval_edit} then answers "what does this edit do to the report?"
    as a delta against that substrate:

    - edits the classifier proves report-preserving come back
      [Unchanged] with an empty {!Risk_diff.t};
    - Delete-permission edits (maintenance-exposure flips) and σ edits
      re-level only the affected signatures' sites ([Delta]) — this is
      the interactive (<10 ms) path;
    - profile edits that touch agreement, or policy edits needing a
      full re-evaluation over the reused LTS, are [Replay];
    - pure policy-shrink edits that do change the reachable transition
      structure but only within recorded store cones are answered by a
      cone-scoped reachability walk ([Cone]) — a computed outcome, set-
      and level-identical to the exact path, with change lists in
      canonical (signature-sorted) order;
    - the remaining structure-changing edits are [Full_rerun].

    [Replay]/[Full_rerun] candidates are not computed unless [~exact]
    routes them through {!Analysis.run_incremental} (byte-identical to
    a cold run, seconds on large models). *)

type classification = Unchanged | Delta | Cone | Replay | Full_rerun

val classification_to_string : classification -> string

type outcome = {
  edit : Edit.t;
  classification : classification;
  diff : Risk_diff.t option;
      (** [None] when the candidate was classified but not computed
          ([Replay]/[Full_rerun] without [~exact]). *)
  worst_after : Level.t option;  (** Same availability as [diff]. *)
}

type base

val prepare : Analysis.t -> (base, string) result
(** One pass over the plan's findable entries (a [whatif/prepare]
    span). Fails when the analysis has no profile (and hence no
    disclosure report to delta against). *)

val worst_before : base -> Level.t
val num_signatures : base -> int
val num_sites : base -> int

val acl_candidates : base -> Edit.t list
(** The "try all single-ACL removals" candidate set: one single-tuple
    [Revoke] per concrete Read/Write grant of the base policy, plus one
    whole-store Delete [Revoke] per (actor, store) holding any Delete —
    maintenance exposure is store-level, so per-field Delete
    revocations are provably no-ops. *)

val eval_edit :
  ?exact:bool -> base -> Edit.t -> (outcome, string) result
(** Evaluate one candidate. Errors are application failures (unknown
    store, ...); classification never fails. Increments
    [whatif/incremental_hits] or [whatif/invalidated_lts] per
    candidate. The delta path is read-only on the base; [~exact] is
    not (it re-annotates the shared LTS labels) and must not run
    concurrently. *)

val improvement_score : Risk_diff.t -> int
(** Σ (rank before − rank after) over removed/added/changed
    signatures: positive = risk reduced. *)

type ranked = { outcome : outcome; score : int }

val sweep : ?jobs:int -> ?exact:bool -> base -> Edit.t list -> ranked list
(** Evaluate every candidate and rank by descending {!improvement_score}
    (uncomputed candidates last, ties in candidate order), under a
    [phase/whatif] span. [~jobs] fans the (read-only) delta evaluations
    over a domain pool; forced sequential when [~exact]. *)
