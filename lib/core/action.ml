open Mdp_dataflow

type kind = Collect | Create | Read | Disclose | Anon | Delete

type provenance =
  | From_flow of { service : string; order : int }
  | Potential
  | Inferred

type risk =
  | Disclosure_risk of {
      impact : Level.t;
      likelihood : Level.t;
      level : Level.t;
    }
  | Value_risk of { violations : int; total : int; max_risk : float }

type t = {
  kind : kind;
  fields : Field.t list;
  schema : string option;
  store : string option;  (** Datastore the action touches, when any. *)
  actor : string;
  purpose : string option;
  provenance : provenance;
  risk : risk option;
}

let make ?schema ?store ?purpose ?risk ~kind ~fields ~actor provenance =
  if fields = [] then invalid_arg "Action.make: no fields";
  { kind; fields; schema; store; actor; purpose; provenance; risk }

let with_risk t risk = { t with risk = Some risk }

let kind_of_flow = function
  | Flow.Collect -> Collect
  | Flow.Disclose -> Disclose
  | Flow.Create -> Create
  | Flow.Anon -> Anon
  | Flow.Read -> Read

let equal a b =
  a == b
  || a.kind = b.kind
     && List.length a.fields = List.length b.fields
     && List.for_all2 Field.equal a.fields b.fields
     && a.schema = b.schema && a.store = b.store && a.actor = b.actor
     && a.purpose = b.purpose
     && a.provenance = b.provenance && a.risk = b.risk

(* [equal] is structural equality, so the generic structural hash is
   consistent with it. Deep limits are raised well past the default so
   actions differing only in a late field (actor, provenance) do not all
   collide. *)
let hash t = Hashtbl.hash_param 64 256 t

let pp_kind ppf k =
  Format.pp_print_string ppf
    (match k with
    | Collect -> "collect"
    | Create -> "create"
    | Read -> "read"
    | Disclose -> "disclose"
    | Anon -> "anon"
    | Delete -> "delete")

let pp_risk ppf = function
  | Disclosure_risk { impact; likelihood; level } ->
    Format.fprintf ppf "risk=%a (impact %a, likelihood %a)" Level.pp level
      Level.pp impact Level.pp likelihood
  | Value_risk { violations; total; max_risk } ->
    Format.fprintf ppf "value-risk: %d/%d violations (max %.2f)" violations
      total max_risk

let pp ppf t =
  Format.fprintf ppf "%a(%s%s) by %s" pp_kind t.kind
    (String.concat ", " (List.map Field.name t.fields))
    (match t.schema with Some s -> ":" ^ s | None -> "")
    t.actor;
  (match t.provenance with
  | From_flow { service; order } -> Format.fprintf ppf " [%s#%d]" service order
  | Potential -> Format.fprintf ppf " [potential]"
  | Inferred -> Format.fprintf ppf " [inferred]");
  (match t.purpose with
  | Some p -> Format.fprintf ppf " for %S" p
  | None -> ());
  match t.risk with
  | Some r -> Format.fprintf ppf " %a" pp_risk r
  | None -> ()
