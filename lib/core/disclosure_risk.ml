open Mdp_dataflow
open Mdp_prelude

type combine = Sum_saturating | Independent_union

type likelihood_model = {
  accidental_access : float;
  maintenance_exposure : float;
  rogue_service : float;
  combine : combine;
}

let default_likelihood =
  {
    accidental_access = 0.05;
    maintenance_exposure = 0.02;
    rogue_service = 0.01;
    combine = Sum_saturating;
  }

(* The single combination point for the three §III-A scenario
   probabilities, shared with [Risk_plan.eval_likelihood] so the naive
   and compiled engines stay float-identical.  [Sum_saturating] keeps
   the paper's semantics (sum, clipped to 1) but the saturation is no
   longer silent: it bumps the [risk/likelihood_saturated] counter so
   an aggressive model that pushes the sum past 1 shows up in
   [--metrics] output.  [Independent_union] treats the scenarios as
   independent events and never needs a clamp. *)
let combine_scenarios model ~accidental ~maintenance ~rogue =
  match model.combine with
  | Sum_saturating ->
    let sum = accidental +. maintenance +. rogue in
    if sum > 1.0 then Mdp_obs.Metrics.incr "risk/likelihood_saturated";
    Float.min 1.0 sum
  | Independent_union ->
    1.0 -. ((1.0 -. accidental) *. (1.0 -. maintenance) *. (1.0 -. rogue))

type finding = {
  src : Plts.state_id;
  dst : Plts.state_id;
  action : Action.t;
  impact : float;
  likelihood : float;
  impact_level : Level.t;
  likelihood_level : Level.t;
  level : Level.t;
  witness : Action.t list;
}

type report = {
  non_allowed : string list;
  findings : finding list;
  exposures : finding list;
}

let transition_impact u profile (action : Action.t) =
  let diagram = Universe.diagram u in
  match action.kind with
  | Action.Collect | Action.Read | Action.Disclose ->
    Listx.max_byf
      (fun f -> User_profile.sigma profile diagram ~actor:action.actor f)
      action.fields
  | Action.Create | Action.Anon ->
    (* Impact ranges over every actor that could then identify the
       created fields. Anon flows create the anon variants. *)
    let created =
      match action.kind with
      | Action.Anon -> List.map Field.anon_of action.fields
      | _ -> action.fields
    in
    let store =
      match action.store with
      | Some s -> Universe.store_index u s
      | None -> invalid_arg "transition_impact: create without store"
    in
    Listx.max_byf
      (fun f ->
        let fi = Universe.field_index u f in
        Listx.max_byf
          (fun a ->
            User_profile.sigma profile diagram
              ~actor:(Universe.actor_name u a) f)
          (Universe.readers u ~store ~field:fi))
      created
  | Action.Delete -> 0.0

(* Does the actor take part in a service the user did not agree to, one of
   whose flows reads this store into the actor? (§III-A's third scenario:
   "an actor begins the execution of a service that the user did not agree
   to use".) *)
let in_rogue_read u profile ~actor ~store =
  List.exists
    (fun ((svc : Service.t), (flow : Flow.t)) ->
      (not (User_profile.agrees_to profile svc.id))
      && Flow.equal_node flow.src (Flow.Store store)
      && Flow.equal_node flow.dst (Flow.Actor actor))
    (Diagram.all_flows (Universe.diagram u))

let transition_likelihood u profile model (action : Action.t) =
  match (action.kind, action.store) with
  | Action.Read, Some store_id ->
    let store = Universe.store_index u store_id in
    let actor_i = Universe.actor_index u action.actor in
    let accidental =
      match action.provenance with
      | Action.Potential | Action.Inferred -> model.accidental_access
      | Action.From_flow { service; _ } ->
        (* A read prescribed by a non-agreed service is the rogue-service
           scenario itself; within an agreed service it is wanted
           behaviour, not an accident. *)
        if User_profile.agrees_to profile service then 0.0
        else model.rogue_service
    in
    let maintenance =
      if List.mem actor_i (Universe.deleters u ~store) then
        model.maintenance_exposure
      else 0.0
    in
    let rogue =
      match action.provenance with
      | Action.From_flow _ -> 0.0 (* already counted above *)
      | Action.Potential | Action.Inferred ->
        if in_rogue_read u profile ~actor:action.actor ~store:store_id then
          model.rogue_service
        else 0.0
    in
    combine_scenarios model ~accidental ~maintenance ~rogue
  | (Action.Read | Action.Collect | Action.Create | Action.Disclose
    | Action.Anon | Action.Delete), _ ->
    0.0

let witness_of lts src =
  match Plts.path_to lts (fun s -> s = src) with
  | Some steps -> List.map fst steps
  | None -> []

let analyse ?(matrix = Risk_matrix.default) ?(model = default_likelihood) u lts
    profile =
  (* Annotate read labels in place. Inferred (§III-B) transitions carry
     Value_risk annotations that must survive a later disclosure pass. *)
  Plts.map_labels lts (fun { label; _ } ->
      match (label.Action.kind, label.Action.provenance) with
      | Action.Read, (Action.From_flow _ | Action.Potential) ->
        let impact = transition_impact u profile label in
        let likelihood = transition_likelihood u profile model label in
        Action.with_risk label (Risk_matrix.assess matrix ~impact ~likelihood)
      | Action.Read, Action.Inferred
      | ( ( Action.Collect | Action.Create | Action.Disclose | Action.Anon
          | Action.Delete ),
          _ ) ->
        label);
  let findings = ref [] and exposures = ref [] in
  Plts.iter_transitions lts (fun { src; label; dst } ->
      let impact = transition_impact u profile label in
      let likelihood = transition_likelihood u profile model label in
      let impact_level = Risk_matrix.impact_level matrix impact in
      let likelihood_level = Risk_matrix.likelihood_level matrix likelihood in
      let level =
        Risk_matrix.level matrix ~impact:impact_level ~likelihood:likelihood_level
      in
      let finding () =
        {
          src;
          dst;
          action = label;
          impact;
          likelihood;
          impact_level;
          likelihood_level;
          level;
          witness = witness_of lts src;
        }
      in
      match label.Action.kind with
      | Action.Read ->
        if
          label.Action.provenance <> Action.Inferred
          && Level.compare level Level.None_ > 0
        then findings := finding () :: !findings
      | Action.Collect | Action.Create | Action.Disclose | Action.Anon ->
        if impact > 0.0 then exposures := finding () :: !exposures
      | Action.Delete -> ());
  let by_severity a b =
    match Level.compare b.level a.level with
    | 0 -> Float.compare b.impact a.impact
    | c -> c
  in
  {
    non_allowed = User_profile.non_allowed_actors profile (Universe.diagram u);
    findings = List.sort by_severity !findings;
    exposures = List.sort by_severity !exposures;
  }

let max_level report =
  List.fold_left (fun acc f -> Level.max acc f.level) Level.None_ report.findings

let findings_for report ~actor =
  List.filter (fun f -> f.action.Action.actor = actor) report.findings

let level_for report ~actor ~store ~field =
  List.fold_left
    (fun acc f ->
      if
        f.action.Action.actor = actor
        && f.action.Action.store = Some store
        && List.exists (Field.equal field) f.action.Action.fields
      then Level.max acc f.level
      else acc)
    Level.None_ report.findings

let pp_finding ppf f =
  Format.fprintf ppf "[%a] %a (impact %.2f=%a, likelihood %.2f=%a) at s%d"
    Level.pp f.level Action.pp f.action f.impact Level.pp f.impact_level
    f.likelihood Level.pp f.likelihood_level f.src

let pp_report ppf r =
  Format.fprintf ppf "@[<v>non-allowed actors: %s@,%d risk finding(s):@,%a@]"
    (String.concat ", " r.non_allowed)
    (List.length r.findings)
    (Format.pp_print_list ~pp_sep:Format.pp_print_cut pp_finding)
    r.findings
