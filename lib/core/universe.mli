(** The indexed variable universe of one model: a validated diagram plus
    its access-control policy, with dense integer indices for actors,
    fields, datastores and flows. Privacy-state variables live in bitsets
    indexed by [var]; paper §II-B: "each state must be labelled with
    2 * |actors| * |fields| Boolean state variables". *)

open Mdp_dataflow

type t

val make : Diagram.t -> Mdp_policy.Policy.t -> t
(** @raise Invalid_argument when the policy does not validate against the
    diagram. *)

val diagram : t -> Diagram.t
val policy : t -> Mdp_policy.Policy.t
val with_policy : t -> Mdp_policy.Policy.t -> t
(** Same diagram and indices, different policy (the §IV-A edit loop). *)

val nactors : t -> int
val nfields : t -> int
val nstores : t -> int
val nflows : t -> int
val nvars : t -> int
(** [nactors * nfields]: the count the paper's 2·5·6 = 60 example refers
    to (each var existing in a [has] and a [could] copy). *)

val actor_index : t -> string -> int
(** @raise Not_found on unknown ids. Same for the others. *)

val actor_name : t -> int -> string
val field_index : t -> Field.t -> int
val field_at : t -> int -> Field.t
val store_index : t -> string -> int
val store_name : t -> int -> string
val store_at : t -> int -> Datastore.t
val flow_index : t -> service:string -> order:int -> int
val flow_at : t -> int -> Mdp_dataflow.Service.t * Flow.t
val var : t -> actor:int -> field:int -> int
(** Index into [has]/[could] bitsets. *)

val var_actor : t -> int -> int
val var_field : t -> int -> int

val readers : t -> store:int -> field:int -> int list
(** Actor indices allowed to [Read] the field in the store, precomputed
    from the policy. *)

val deleters : t -> store:int -> int list
(** Actors allowed to [Delete] at least one field of the store. *)

val readable_by : t -> actor:int -> store:int -> int list
(** Field indices of the store's schema fields the actor may read. *)

val readable_bits : t -> actor:int -> store:int -> Mdp_prelude.Bitset.t
(** The same permission row as a bitset over field indices — the
    generator intersects it with store contents instead of querying
    [Policy.allows] per state. Treat as read-only; it is shared. *)

val readable_anywhere : t -> actor:int -> Mdp_prelude.Bitset.t
(** Union of {!readable_bits} over all stores: bit [f] set iff the
    actor may read field [f] from at least one datastore. This is the
    store-independent access question of §III-B ("any read route to
    the raw field removes the inference risk"). Treat as read-only. *)
