(** Qualitative risk levels used throughout §III-A: impact, likelihood and
    the resulting risk are all categorised Low / Medium / High (with [None]
    for a dimension that is absent altogether, e.g. the impact of an action
    touching only insensitive data). *)

type t = None_ | Low | Medium | High

val compare : t -> t -> int
(** [None_ < Low < Medium < High]. *)

val rank : t -> int
(** [None_] is 0, [High] is 3 — a dense index for per-level counter
    arrays (population aggregation). *)

val equal : t -> t -> bool
val max : t -> t -> t
val to_string : t -> string
val of_string : string -> t option
val pp : Format.formatter -> t -> unit
