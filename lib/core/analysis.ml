type params = {
  options : Generate.options;
  matrix : Risk_matrix.t;
  model : Disclosure_risk.likelihood_model;
  profile : User_profile.t option;
  bindings : Pseudonym_risk.binding list;
}

type t = {
  params : params;
  universe : Universe.t;
  lts : Plts.t;
  consistency : Consistency.gap list;
  disclosure : Disclosure_risk.report option;
  pseudonym : Pseudonym_risk.risk_transition list;
  plan : Risk_plan.t option;
}

(* Everything downstream of exploration, shared by [run_params] and the
   cone-scoped rebuild path of [run_incremental] (which produces a
   byte-identical LTS by other means). *)
let analyse_phase params universe lts =
  Mdp_obs.Metrics.span "phase/analyse" @@ fun () ->
  let consistency = Consistency.check universe in
  let plan =
    (* Compiled plan path: bit-identical to Disclosure_risk.analyse
       (test_population checks the equality), one witness BFS instead of
       one per finding. Compiled before the pseudonym pass, which adds
       transitions and would invalidate the plan. Kept on the result so
       [run_incremental] can reuse it. *)
    Option.map
      (fun _ ->
        Risk_plan.compile ~matrix:params.matrix ~model:params.model universe
          lts)
      params.profile
  in
  let disclosure =
    match (plan, params.profile) with
    | Some plan, Some profile -> Some (Risk_plan.analyse plan profile)
    | _ -> None
  in
  let pseudonym =
    List.concat_map (Pseudonym_risk.analyse universe lts) params.bindings
  in
  { params; universe; lts; consistency; disclosure; pseudonym; plan }

let run_params ?jobs ?cancel params diagram policy =
  let universe = Universe.make diagram policy in
  let lts =
    Mdp_obs.Metrics.span "phase/explore" @@ fun () ->
    Generate.run ~options:params.options ?jobs ?cancel universe
  in
  analyse_phase params universe lts

let run ?(options = Generate.default_options) ?(matrix = Risk_matrix.default)
    ?(model = Disclosure_risk.default_likelihood) ?profile ?(bindings = [])
    diagram policy =
  run_params { options; matrix; model; profile; bindings } diagram policy

let rerun_with_policy t policy =
  run_params t.params (Universe.diagram t.universe) policy

(* ----- incremental re-analysis ----- *)

let inputs_of t =
  {
    Edit.diagram = Universe.diagram t.universe;
    policy = Universe.policy t.universe;
    profile = t.params.profile;
    bindings = t.params.bindings;
  }

let run_incremental ?jobs ~previous edits =
  Mdp_obs.Metrics.span "phase/whatif" @@ fun () ->
  let before = inputs_of previous in
  let after =
    match Edit.apply_all before edits with
    | Ok a -> a
    | Error msg -> invalid_arg ("Analysis.run_incremental: " ^ msg)
  in
  let inv = Edit.classify ~options:previous.params.options ~before ~after in
  let params =
    {
      previous.params with
      profile = after.Edit.profile;
      bindings = after.Edit.bindings;
    }
  in
  if inv.Edit.inv_lts then begin
    Mdp_obs.Metrics.incr "whatif/invalidated_lts";
    Mdp_obs.Metrics.incr "whatif/invalidated_plan";
    Mdp_obs.Metrics.incr "whatif/invalidated_classes";
    (* Cone-scoped re-exploration: a pure policy-shrink edit re-explores
       only through the affected store classes' cones, serving every
       untouched successor row from the previous LTS. [Regen.rebuild]
       guarantees the result is byte-identical to the cold run below —
       numbering, backend, spill behaviour, cone summaries — so the rest
       of the pipeline cannot tell which path produced it. Either
       [make_patch] (ineligible edit) or [rebuild] (no recorded cones)
       declining falls back to the cold run. *)
    let cone =
      if not inv.Edit.inv_cone then None
      else begin
        let u = Universe.make after.Edit.diagram after.Edit.policy in
        match
          Regen.make_patch ~u_old:previous.universe ~u
            previous.params.options
        with
        | None -> None
        | Some patch ->
          Mdp_obs.Metrics.span "phase/cone_rebuild" @@ fun () ->
          Option.map
            (fun lts -> (u, lts))
            (Regen.rebuild ?jobs patch previous.lts)
      end
    in
    match cone with
    | Some (universe, lts) ->
      Mdp_obs.Metrics.incr "whatif/cone_rebuilds";
      analyse_phase params universe lts
    | None -> run_params ?jobs params after.Edit.diagram after.Edit.policy
  end
  else begin
    Mdp_obs.Metrics.incr "whatif/incremental_hits";
    if inv.Edit.inv_plan then Mdp_obs.Metrics.incr "whatif/invalidated_plan";
    if inv.Edit.inv_classes then
      Mdp_obs.Metrics.incr "whatif/invalidated_classes";
    let policy_changed = before.Edit.policy != after.Edit.policy in
    let universe =
      if policy_changed then
        Universe.with_policy previous.universe after.Edit.policy
      else previous.universe
    in
    let lts = previous.lts in
    let consistency =
      if inv.Edit.inv_consistency then Consistency.check universe
      else previous.consistency
    in
    (* The disclosure re-evaluation must precede a pseudonym re-run:
       that pass appends transitions (cold runs analyse first too). *)
    let plan, disclosure =
      match params.profile with
      | None -> (None, None)
      | Some profile ->
        let plan =
          match previous.plan with
          | None ->
            (* Previous run had no profile, so no pass ever grew the
               LTS (edits cannot introduce a profile) — a fresh compile
               over the reused LTS equals the cold one. *)
            Risk_plan.compile ~matrix:params.matrix ~model:params.model
              universe lts
          | Some plan ->
            if inv.Edit.inv_plan then
              Risk_plan.repatch_maintenance plan universe
            else if policy_changed then Risk_plan.with_universe plan universe
            else plan
        in
        let disclosure =
          if inv.Edit.inv_risk || previous.disclosure = None then
            Some (Risk_plan.analyse ~grown:true plan profile)
          else previous.disclosure
        in
        (Some plan, disclosure)
    in
    let pseudonym =
      if inv.Edit.inv_pseudonym then
        List.concat_map
          (Pseudonym_risk.analyse universe lts)
          after.Edit.bindings
      else previous.pseudonym
    in
    { params; universe; lts; consistency; disclosure; pseudonym; plan }
  end

(* ----- structured failures ----- *)

type failure =
  | State_limit of { limit : int; hint : string }
  | Cancelled of { phase : string; deadline : bool }

let state_limit_hint =
  "raise --max-states, restrict --service, or simplify the model"

let failure_message = function
  | State_limit { limit; hint } ->
    Printf.sprintf "LTS exceeds %d states; %s" limit hint
  | Cancelled { phase; deadline = true } ->
    Printf.sprintf "analysis deadline exceeded during %s" phase
  | Cancelled { phase; deadline = false } ->
    Printf.sprintf "analysis cancelled during %s" phase

(* The exploration is the only unbounded phase, so both failure modes
   are attributed to it; the risk passes walk an already-bounded LTS. *)
let checked phase f =
  match f () with
  | v -> Ok v
  | exception Mdp_lts.Lts.Too_many_states limit ->
    Error (State_limit { limit; hint = state_limit_hint })
  | exception Mdp_obs.Cancel.Cancelled reason ->
    Error
      (Cancelled { phase; deadline = reason = Mdp_obs.Cancel.Deadline })

let run_checked ?(options = Generate.default_options)
    ?(matrix = Risk_matrix.default) ?(model = Disclosure_risk.default_likelihood)
    ?profile ?(bindings = []) ?jobs ?cancel diagram policy =
  checked "explore" (fun () ->
      run_params ?jobs ?cancel
        { options; matrix; model; profile; bindings }
        diagram policy)

let pp_summary ppf t =
  Format.fprintf ppf "@[<v>model: %s@,"
    (Lts_render.summary t.universe t.lts);
  (match t.consistency with
  | [] -> Format.fprintf ppf "policy consistency: ok@,"
  | gaps ->
    Format.fprintf ppf "policy gaps (%d):@,  @[<v>%a@]@," (List.length gaps)
      (Format.pp_print_list ~pp_sep:Format.pp_print_cut Consistency.pp_gap)
      gaps);
  (match t.disclosure with
  | None -> ()
  | Some report ->
    Format.fprintf ppf "%a@," Disclosure_risk.pp_report report);
  match t.pseudonym with
  | [] -> Format.fprintf ppf "no pseudonymisation risk transitions@]"
  | rts ->
    Format.fprintf ppf "pseudonymisation risk transitions (%d):@,  @[<v>%a@]@]"
      (List.length rts)
      (Format.pp_print_list ~pp_sep:Format.pp_print_cut
         Pseudonym_risk.pp_risk_transition)
      rts
