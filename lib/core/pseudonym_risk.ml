open Mdp_dataflow
open Mdp_prelude

type binding = {
  store : string;
  dataset : Mdp_anon.Dataset.t;
  attr_fields : (string * Field.t) list;
  policy : Mdp_anon.Value_risk.policy;
}

let make_binding ~store ~dataset ~attr_fields ~policy =
  let attr_names =
    List.map (fun (a : Mdp_anon.Attribute.t) -> a.name) (Mdp_anon.Dataset.attrs dataset)
  in
  List.iter
    (fun (name, _) ->
      if not (List.mem name attr_names) then
        invalid_arg
          (Printf.sprintf "Pseudonym_risk: attribute %s not in dataset" name))
    attr_fields;
  if not (List.mem_assoc policy.Mdp_anon.Value_risk.sensitive attr_fields) then
    invalid_arg "Pseudonym_risk: sensitive attribute unbound";
  let quasi =
    List.filter Mdp_anon.Attribute.is_quasi (Mdp_anon.Dataset.attrs dataset)
  in
  List.iter
    (fun (a : Mdp_anon.Attribute.t) ->
      if not (List.mem_assoc a.name attr_fields) then
        invalid_arg
          (Printf.sprintf "Pseudonym_risk: quasi attribute %s unbound" a.name))
    quasi;
  { store; dataset; attr_fields; policy }

type risk_transition = {
  src : Plts.state_id;
  dst : Plts.state_id;
  actor : string;
  field : Field.t;
  fields_read : Field.t list;
  report : Mdp_anon.Value_risk.report;
}

(* "May the actor read this field from *some* datastore?" — the access
   question of §III-B — is store-independent: any read route to the raw
   field removes the inference risk (it is then a plain disclosure
   risk). It is answered below by the universe's precompiled access
   matrix ([Universe.readable_anywhere], the union of the per-store
   permission bitsets) instead of scanning reader lists per
   (state, actor). *)

let analyse u lts binding =
  let diagram = Universe.diagram u in
  ignore (Diagram.find_store diagram binding.store);
  let sensitive_field =
    List.assoc binding.policy.Mdp_anon.Value_risk.sensitive binding.attr_fields
  in
  let quasi_attrs =
    List.filter Mdp_anon.Attribute.is_quasi (Mdp_anon.Dataset.attrs binding.dataset)
    |> List.map (fun (a : Mdp_anon.Attribute.t) -> a.name)
  in
  let sens_anon = Field.anon_of sensitive_field in
  let sens_anon_i =
    try Some (Universe.field_index u sens_anon) with Not_found -> None
  in
  let results = ref [] in
  (match sens_anon_i with
  | None -> () (* the model never pseudonymises the field: no risk states *)
  | Some sens_anon_i ->
    (* State-independent facts, hoisted out of the state sweep. The
       sensitive-field index lookup stays lazy so a model that never
       triggers the risk keeps the original "no such field" behaviour. *)
    let sens_fi = lazy (Universe.field_index u sensitive_field) in
    let eligible =
      (* not (may read raw somewhere) && may read anon somewhere *)
      Array.init (Universe.nactors u) (fun a ->
          lazy
            (let anywhere = Universe.readable_anywhere u ~actor:a in
             (not (Bitset.get anywhere (Lazy.force sens_fi)))
             && Bitset.get anywhere sens_anon_i))
    in
    (* Quasi attributes resolved once: (attr, anon field, index). *)
    let quasi_resolved =
      List.filter_map
        (fun attr ->
          let base = List.assoc attr binding.attr_fields in
          let anon = Field.anon_of base in
          match Universe.field_index u anon with
          | exception Not_found -> None
          | fi -> Some (attr, anon, fi))
        quasi_attrs
    in
    (* The sweep appends states to [lts]; bound it by the pre-sweep count
       so only generated states are scanned (snapshot semantics, without
       materialising an O(n) id list). *)
    let n0 = Plts.num_states lts in
    for src = 0 to n0 - 1 do
        let cfg : Config.t = Plts.state_data lts src in
        for a = 0 to Universe.nactors u - 1 do
          let actor = Universe.actor_name u a in
          let accessed_anon =
            Privacy_state.has_i cfg.Config.privacy
              (Universe.var u ~actor:a ~field:sens_anon_i)
          in
          if accessed_anon && Lazy.force eligible.(a) then begin
            (* Quasi anon fields this actor has read at this state. *)
            let fields_read_attrs, fields_read =
              List.split
                (List.filter_map
                   (fun (attr, anon, fi) ->
                     if
                       Privacy_state.has_i cfg.Config.privacy
                         (Universe.var u ~actor:a ~field:fi)
                     then Some (attr, anon)
                     else None)
                   quasi_resolved)
            in
            let report =
              Mdp_anon.Value_risk.assess binding.dataset
                ~fields_read:fields_read_attrs binding.policy
            in
            (* The inferred read leads to a state where the actor has
               identified the raw field. *)
            let cfg' = Config.copy cfg in
            Bitset.set cfg'.Config.privacy.Privacy_state.has
              (Universe.var u ~actor:a ~field:(Lazy.force sens_fi));
            let dst = Plts.add_state lts cfg' in
            let max_risk =
              Frac.to_float (Mdp_anon.Value_risk.max_risk report)
            in
            let action =
              Action.make ~store:binding.store ~kind:Action.Read
                ~fields:[ sensitive_field ] ~actor
                ~risk:
                  (Action.Value_risk
                     {
                       violations = report.Mdp_anon.Value_risk.violations;
                       total = List.length report.Mdp_anon.Value_risk.scores;
                       max_risk;
                     })
                Action.Inferred
            in
            ignore (Plts.add_transition lts ~src ~label:action ~dst : bool);
            results :=
              { src; dst; actor; field = sensitive_field; fields_read; report }
              :: !results
          end
        done
    done);
  List.sort (fun a b -> Int.compare a.src b.src) !results

let check ~max_violation_ratio transitions =
  let worst =
    List.fold_left
      (fun acc t ->
        let total = List.length t.report.Mdp_anon.Value_risk.scores in
        if total = 0 then acc
        else
          let ratio =
            float_of_int t.report.Mdp_anon.Value_risk.violations
            /. float_of_int total
          in
          match acc with
          | Some (_, r) when r >= ratio -> acc
          | _ -> Some (t, ratio))
      None transitions
  in
  match worst with
  | Some (t, ratio) when ratio > max_violation_ratio ->
    Error
      (Printf.sprintf
         "pseudonymisation unacceptable: actor %s infers %s with %d/%d \
          violations (%.0f%% > %.0f%% allowed) after reading {%s}"
         t.actor (Field.name t.field) t.report.Mdp_anon.Value_risk.violations
         (List.length t.report.Mdp_anon.Value_risk.scores)
         (100.0 *. ratio)
         (100.0 *. max_violation_ratio)
         (String.concat ", " (List.map Field.name t.fields_read)))
  | Some _ | None -> Ok ()

let pp_risk_transition ppf t =
  Format.fprintf ppf "s%d --read(%s) by %s [inferred, read {%s}]--> s%d: %a"
    t.src (Field.name t.field) t.actor
    (String.concat ", " (List.map Field.name t.fields_read))
    t.dst Mdp_anon.Value_risk.pp_report t.report
