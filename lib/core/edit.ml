open Mdp_dataflow
open Mdp_policy

(* Typed model edits (the §IV-A design loop's vocabulary) and the
   invalidation analysis behind [Analysis.run_incremental]: given what
   an edit concretely changed, decide which artifacts of the previous
   run — LTS, compiled risk plan, per-profile evaluation, population
   classes, pseudonym pass, consistency gaps — must be recomputed and
   which can be reused byte-for-byte. *)

type t =
  | Grant of Acl.entry
  | Revoke of {
      subject : Acl.subject;
      store : string;
      fields : Field.t list option;
      perms : Permission.t list;
    }
  | Add_flow of { service : string; flow : Flow.t }
  | Remove_flow of { service : string; order : int }
  | Set_sensitivity of Field.t * float
  | Set_agreement of { service : string; agreed : bool }
  | Set_bindings of Pseudonym_risk.binding list

type inputs = {
  diagram : Diagram.t;
  policy : Policy.t;
  profile : User_profile.t option;
  bindings : Pseudonym_risk.binding list;
}

(* ----- application ----- *)

let replace_service diagram id f =
  match Diagram.find_service diagram id with
  | None -> Error (Printf.sprintf "unknown service %s" id)
  | Some svc -> (
    match f svc with
    | Error _ as e -> e
    | Ok flows -> (
      match
        (* [Service.make]/[Diagram.make] re-validate the edited model the
           same way the original was validated. *)
        try
          let svc' = Service.make ~id ~flows in
          let services =
            List.map
              (fun (s : Service.t) -> if s.id = id then svc' else s)
              diagram.Diagram.services
          in
          Diagram.make ~actors:diagram.Diagram.actors
            ~datastores:diagram.Diagram.datastores ~services
        with Invalid_argument msg -> Error [ msg ]
      with
      | Ok d -> Ok d
      | Error msgs -> Error (String.concat "; " msgs)))

let apply inputs edit =
  match edit with
  | Grant entry -> (
    let policy = Policy.grant inputs.policy entry in
    match Policy.validate policy inputs.diagram with
    | Ok () -> Ok { inputs with policy }
    | Error msgs -> Error (String.concat "; " msgs))
  | Revoke { subject; store; fields; perms } -> (
    let policy =
      Policy.revoke inputs.policy ~subject ~store ?fields perms
    in
    match Policy.validate policy inputs.diagram with
    | Ok () -> Ok { inputs with policy }
    | Error msgs -> Error (String.concat "; " msgs))
  | Add_flow { service; flow } -> (
    match
      replace_service inputs.diagram service (fun svc ->
          Ok (svc.Service.flows @ [ flow ]))
    with
    | Ok diagram -> Ok { inputs with diagram }
    | Error _ as e -> e)
  | Remove_flow { service; order } -> (
    match
      replace_service inputs.diagram service (fun svc ->
          if List.exists (fun (f : Flow.t) -> f.order = order) svc.flows
          then
            Ok
              (List.filter
                 (fun (f : Flow.t) -> f.order <> order)
                 svc.flows)
          else
            Error
              (Printf.sprintf "service %s has no flow with order %d"
                 service order))
    with
    | Ok diagram -> Ok { inputs with diagram }
    | Error _ as e -> e)
  | Set_sensitivity (field, v) -> (
    match inputs.profile with
    | None -> Error "no user profile to edit"
    | Some profile -> (
      let sens = User_profile.sensitivities profile in
      let sens =
        if List.exists (fun (f, _) -> Field.equal f field) sens then
          List.map
            (fun (f, s) -> if Field.equal f field then (f, v) else (f, s))
            sens
        else sens @ [ (field, v) ]
      in
      try
        let profile =
          User_profile.make ~sensitivities:sens
            ~agreed_services:(User_profile.agreed_services profile)
            ()
        in
        Ok { inputs with profile = Some profile }
      with Invalid_argument msg -> Error msg))
  | Set_agreement { service; agreed } -> (
    match inputs.profile with
    | None -> Error "no user profile to edit"
    | Some profile ->
      let services = User_profile.agreed_services profile in
      let already = List.mem service services in
      if already = agreed then Ok inputs (* vacuous *)
      else
        let services =
          if agreed then services @ [ service ]
          else List.filter (fun s -> s <> service) services
        in
        let profile =
          User_profile.make
            ~sensitivities:(User_profile.sensitivities profile)
            ~agreed_services:services ()
        in
        Ok { inputs with profile = Some profile })
  | Set_bindings bindings -> Ok { inputs with bindings }

let apply_all inputs edits =
  List.fold_left
    (fun acc edit ->
      match acc with Error _ as e -> e | Ok i -> apply i edit)
    (Ok inputs) edits

(* ----- invalidation analysis ----- *)

type invalidation = {
  inv_lts : bool;
  inv_plan : bool;
  inv_risk : bool;
  inv_classes : bool;
  inv_pseudonym : bool;
  inv_consistency : bool;
}

let nothing =
  {
    inv_lts = false;
    inv_plan = false;
    inv_risk = false;
    inv_classes = false;
    inv_pseudonym = false;
    inv_consistency = false;
  }

let everything =
  {
    inv_lts = true;
    inv_plan = true;
    inv_risk = true;
    inv_classes = true;
    inv_pseudonym = true;
    inv_consistency = true;
  }

(* Fields that can ever reach [store]'s contents: the created (stored)
   fields of the active create/anon flows into it, filtered by the
   writers' Write permission when enforcement is on. Exploration reads —
   from-flow, potential, granular — all fetch from store contents, so a
   Read grant on a field outside this set is invisible to the LTS. *)
let writable_fields ~(options : Generate.options) diagram policy store =
  let active (svc : Service.t) =
    match options.services with
    | None -> true
    | Some ids -> List.mem svc.id ids
  in
  List.concat_map
    (fun ((svc : Service.t), (flow : Flow.t)) ->
      if not (active svc) then []
      else
        match (Diagram.classify diagram flow, flow.dst) with
        | (Flow.Create | Flow.Anon), Flow.Store s when s = store ->
          let actor = Flow.node_name flow.src in
          let created =
            match Diagram.classify diagram flow with
            | Flow.Anon -> List.map Field.anon_of flow.fields
            | _ -> flow.fields
          in
          if options.enforce_policy then
            List.filter
              (fun f ->
                Policy.allows policy ~diagram ~actor Permission.Write
                  ~store f)
              created
          else created
        | _ -> [])
    (Diagram.all_flows diagram)

(* Store-level deleter sets — the only §III-A consumer of Delete
   permissions when potential deletes are off. *)
let deleter_sets diagram policy =
  List.map
    (fun (ds : Datastore.t) ->
      let fields = Diagram.all_fields diagram in
      List.filter_map
        (fun (a : Actor.t) ->
          if
            List.exists
              (fun f ->
                Policy.allows policy ~diagram ~actor:a.id
                  Permission.Delete ~store:ds.id f)
              fields
          then Some a.id
          else None)
        diagram.Diagram.actors)
    diagram.Diagram.datastores

let profile_equal a b =
  match (a, b) with
  | None, None -> true
  | Some a, Some b ->
    User_profile.agreed_services a = User_profile.agreed_services b
    && List.length (User_profile.sensitivities a)
       = List.length (User_profile.sensitivities b)
    && List.for_all2
         (fun (fa, sa) (fb, sb) -> Field.equal fa fb && sa = sb)
         (User_profile.sensitivities a)
         (User_profile.sensitivities b)
  | _ -> false

let classify ~(options : Generate.options) ~before ~after =
  if before.diagram != after.diagram then everything
  else begin
    let removed, added =
      if before.policy == after.policy then ([], [])
      else Policy.diff ~before:before.policy ~after:after.policy
          before.diagram
    in
    let tuples = removed @ added in
    let bindings_changed = before.bindings != after.bindings in
    (* The pseudonym pass reads Read permissions ([readable_anywhere]);
       any concrete policy change under active bindings forces a full
       re-run, and the pass grows the LTS — so the LTS itself cannot be
       reused either. Likewise, changing a non-empty binding set: the
       previous pass already grew the LTS and appends cannot be undone. *)
    if
      (tuples <> [] && after.bindings <> [])
      || (bindings_changed && before.bindings <> [])
    then everything
    else begin
      let writable = Hashtbl.create 4 in
      let writable_in policy store f =
        let key = (store, options.enforce_policy, policy == after.policy) in
        let fields =
          match Hashtbl.find_opt writable key with
          | Some fs -> fs
          | None ->
            let fs =
              writable_fields ~options before.diagram policy store
            in
            Hashtbl.add writable key fs;
            fs
        in
        List.exists (Field.equal f) fields
      in
      let lts_preserving (t : Policy.grant_tuple) =
        match t.perm with
        | Permission.Delete -> not options.potential_deletes
        | Permission.Write ->
          (not options.enforce_policy)
          || not
               (List.exists
                  (fun ((svc : Service.t), (flow : Flow.t)) ->
                    (match options.services with
                    | None -> true
                    | Some ids -> List.mem svc.id ids)
                    &&
                    match (Diagram.classify before.diagram flow, flow.dst)
                    with
                    | (Flow.Create | Flow.Anon), Flow.Store s ->
                      s = t.store
                      && Flow.node_name flow.src = t.actor
                      && List.exists (Field.equal t.field)
                           (match
                              Diagram.classify before.diagram flow
                            with
                           | Flow.Anon ->
                             List.map Field.anon_of flow.fields
                           | _ -> flow.fields)
                    | _ -> false)
                  (Diagram.all_flows before.diagram))
        | Permission.Read ->
          (* Sound for both removals and additions: the field can reach
             the store's contents under neither policy. *)
          (not (writable_in before.policy t.store t.field))
          && not (writable_in after.policy t.store t.field)
      in
      if not (List.for_all lts_preserving tuples) then everything
      else begin
        let has perm =
          List.exists
            (fun (t : Policy.grant_tuple) -> Permission.equal t.perm perm)
            tuples
        in
        let deleters_changed =
          has Permission.Delete
          && deleter_sets before.diagram before.policy
             <> deleter_sets before.diagram after.policy
        in
        let profile_changed =
          not (profile_equal before.profile after.profile)
        in
        {
          inv_lts = false;
          inv_plan = deleters_changed;
          inv_risk = deleters_changed || profile_changed;
          inv_classes = false;
          inv_pseudonym = bindings_changed;
          (* Gaps query only Read and Write over flow fields. *)
          inv_consistency = has Permission.Read || has Permission.Write;
        }
      end
    end
  end

(* ----- parsing and printing (CLI --edit specs, serve requests) ----- *)

let pp_node_spec ppf = function
  | Flow.User -> Format.pp_print_string ppf "user"
  | Flow.Actor a -> Format.fprintf ppf "actor.%s" a
  | Flow.Store s -> Format.fprintf ppf "store.%s" s

let pp ppf = function
  | Grant { effect_ = Acl.Allow; subject; store; selector; perms } ->
    Format.fprintf ppf "grant:%s:%s:%s%s"
      (match subject with
      | Acl.Actor_subject a -> a
      | Acl.Role_subject r -> "role." ^ r)
      (String.concat "," (List.map Permission.to_string perms))
      store
      (match selector with
      | Acl.All_fields -> ""
      | Acl.Fields fs ->
        ":" ^ String.concat "," (List.map Field.name fs))
  | Grant _ -> Format.pp_print_string ppf "grant:<deny-entry>"
  | Revoke { subject; store; fields; perms } ->
    Format.fprintf ppf "revoke:%s:%s:%s%s"
      (match subject with
      | Acl.Actor_subject a -> a
      | Acl.Role_subject r -> "role." ^ r)
      (String.concat "," (List.map Permission.to_string perms))
      store
      (match fields with
      | None -> ""
      | Some fs -> ":" ^ String.concat "," (List.map Field.name fs))
  | Add_flow { service; flow } ->
    Format.fprintf ppf "flow+:%s:%d:%a>%a:%s:%s" service flow.Flow.order
      pp_node_spec flow.src pp_node_spec flow.dst
      (String.concat "," (List.map Field.name flow.fields))
      flow.purpose
  | Remove_flow { service; order } ->
    Format.fprintf ppf "flow-:%s:%d" service order
  | Set_sensitivity (f, v) ->
    Format.fprintf ppf "sensitivity:%s=%.17g" (Field.name f) v
  | Set_agreement { service; agreed } ->
    Format.fprintf ppf "agree:%c%s" (if agreed then '+' else '-') service
  | Set_bindings bs ->
    Format.fprintf ppf "bindings:<%d binding(s)>" (List.length bs)

let to_string t = Format.asprintf "%a" pp t

let parse_subject s =
  match String.index_opt s '.' with
  | Some i when String.sub s 0 i = "role" ->
    Acl.Role_subject (String.sub s (i + 1) (String.length s - i - 1))
  | _ -> Acl.Actor_subject s

let parse_perms s =
  let parts = String.split_on_char ',' s in
  let perms = List.filter_map Permission.of_string parts in
  if List.length perms = List.length parts && perms <> [] then Some perms
  else None

let parse_fields s =
  List.map Field.make (String.split_on_char ',' s)

let parse_node = function
  | "user" -> Ok Flow.User
  | s -> (
    match String.index_opt s '.' with
    | Some i when String.sub s 0 i = "actor" ->
      Ok (Flow.Actor (String.sub s (i + 1) (String.length s - i - 1)))
    | Some i when String.sub s 0 i = "store" ->
      Ok (Flow.Store (String.sub s (i + 1) (String.length s - i - 1)))
    | _ ->
      Error
        (Printf.sprintf
           "bad node %S (expected user, actor.NAME or store.NAME)" s))

let parse spec =
  let err () =
    Error
      (Printf.sprintf
         "bad edit %S (expected grant:SUBJ:PERMS:STORE[:FIELDS], \
          revoke:SUBJ:PERMS:STORE[:FIELDS], flow-:SERVICE:ORDER, \
          flow+:SERVICE:ORDER:SRC>DST:FIELDS[:PURPOSE], \
          sensitivity:FIELD=V or agree:{+,-}SERVICE)"
         spec)
  in
  match String.split_on_char ':' spec with
  | [ "grant"; subj; perms; store ] | [ "grant"; subj; perms; store; "" ]
    -> (
    match parse_perms perms with
    | Some perms ->
      Ok (Grant (Acl.allow (parse_subject subj) ~store perms))
    | None -> err ())
  | [ "grant"; subj; perms; store; fields ] -> (
    match parse_perms perms with
    | Some perms ->
      Ok
        (Grant
           (Acl.allow (parse_subject subj) ~store
              ~fields:(parse_fields fields) perms))
    | None -> err ())
  | [ "revoke"; subj; perms; store ] -> (
    match parse_perms perms with
    | Some perms ->
      Ok
        (Revoke
           { subject = parse_subject subj; store; fields = None; perms })
    | None -> err ())
  | [ "revoke"; subj; perms; store; fields ] -> (
    match parse_perms perms with
    | Some perms ->
      Ok
        (Revoke
           {
             subject = parse_subject subj;
             store;
             fields = Some (parse_fields fields);
             perms;
           })
    | None -> err ())
  | [ "flow-"; service; order ] -> (
    match int_of_string_opt order with
    | Some order -> Ok (Remove_flow { service; order })
    | None -> err ())
  | "flow+" :: service :: order :: endpoints :: fields :: rest -> (
    let purpose = match rest with [ p ] -> p | _ -> "whatif" in
    match (int_of_string_opt order, String.index_opt endpoints '>') with
    | Some order, Some i -> (
      let src = String.sub endpoints 0 i in
      let dst =
        String.sub endpoints (i + 1) (String.length endpoints - i - 1)
      in
      match (parse_node src, parse_node dst) with
      | Ok src, Ok dst -> (
        try
          Ok
            (Add_flow
               {
                 service;
                 flow =
                   Flow.make ~order ~src ~dst
                     ~fields:(parse_fields fields) ~purpose;
               })
        with Invalid_argument msg -> Error msg)
      | Error e, _ | _, Error e -> Error e)
    | _ -> err ())
  | [ "sensitivity"; assign ] -> (
    match String.index_opt assign '=' with
    | Some i -> (
      let f = String.sub assign 0 i in
      let v = String.sub assign (i + 1) (String.length assign - i - 1) in
      match float_of_string_opt v with
      | Some v when v >= 0.0 && v <= 1.0 ->
        Ok (Set_sensitivity (Field.make f, v))
      | _ -> err ())
    | None -> err ())
  | [ "agree"; svc ] when String.length svc > 1 -> (
    let service = String.sub svc 1 (String.length svc - 1) in
    match svc.[0] with
    | '+' -> Ok (Set_agreement { service; agreed = true })
    | '-' -> Ok (Set_agreement { service; agreed = false })
    | _ -> err ())
  | _ -> err ()

let parse_all specs =
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | s :: rest -> (
      match parse s with
      | Ok e -> go (e :: acc) rest
      | Error _ as e -> e)
  in
  go [] specs
