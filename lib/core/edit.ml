open Mdp_dataflow
open Mdp_policy

(* Typed model edits (the §IV-A design loop's vocabulary) and the
   invalidation analysis behind [Analysis.run_incremental]: given what
   an edit concretely changed, decide which artifacts of the previous
   run — LTS, compiled risk plan, per-profile evaluation, population
   classes, pseudonym pass, consistency gaps — must be recomputed and
   which can be reused byte-for-byte. *)

type t =
  | Grant of Acl.entry
  | Revoke of {
      subject : Acl.subject;
      store : string;
      fields : Field.t list option;
      perms : Permission.t list;
    }
  | Add_flow of { service : string; flow : Flow.t }
  | Remove_flow of { service : string; order : int }
  | Set_sensitivity of Field.t * float
  | Set_agreement of { service : string; agreed : bool }
  | Set_bindings of Pseudonym_risk.binding list

type inputs = {
  diagram : Diagram.t;
  policy : Policy.t;
  profile : User_profile.t option;
  bindings : Pseudonym_risk.binding list;
}

(* ----- application ----- *)

let replace_service diagram id f =
  match Diagram.find_service diagram id with
  | None -> Error (Printf.sprintf "unknown service %s" id)
  | Some svc -> (
    match f svc with
    | Error _ as e -> e
    | Ok flows -> (
      match
        (* [Service.make]/[Diagram.make] re-validate the edited model the
           same way the original was validated. *)
        try
          let svc' = Service.make ~id ~flows in
          let services =
            List.map
              (fun (s : Service.t) -> if s.id = id then svc' else s)
              diagram.Diagram.services
          in
          Diagram.make ~actors:diagram.Diagram.actors
            ~datastores:diagram.Diagram.datastores ~services
        with Invalid_argument msg -> Error [ msg ]
      with
      | Ok d -> Ok d
      | Error msgs -> Error (String.concat "; " msgs)))

let apply inputs edit =
  match edit with
  | Grant entry -> (
    let policy = Policy.grant inputs.policy entry in
    match Policy.validate policy inputs.diagram with
    | Ok () -> Ok { inputs with policy }
    | Error msgs -> Error (String.concat "; " msgs))
  | Revoke { subject; store; fields; perms } -> (
    let policy =
      Policy.revoke inputs.policy ~subject ~store ?fields perms
    in
    match Policy.validate policy inputs.diagram with
    | Ok () -> Ok { inputs with policy }
    | Error msgs -> Error (String.concat "; " msgs))
  | Add_flow { service; flow } -> (
    match
      replace_service inputs.diagram service (fun svc ->
          Ok (svc.Service.flows @ [ flow ]))
    with
    | Ok diagram -> Ok { inputs with diagram }
    | Error _ as e -> e)
  | Remove_flow { service; order } -> (
    match
      replace_service inputs.diagram service (fun svc ->
          if List.exists (fun (f : Flow.t) -> f.order = order) svc.flows
          then
            Ok
              (List.filter
                 (fun (f : Flow.t) -> f.order <> order)
                 svc.flows)
          else
            Error
              (Printf.sprintf "service %s has no flow with order %d"
                 service order))
    with
    | Ok diagram -> Ok { inputs with diagram }
    | Error _ as e -> e)
  | Set_sensitivity (field, v) -> (
    match inputs.profile with
    | None -> Error "no user profile to edit"
    | Some profile -> (
      let sens = User_profile.sensitivities profile in
      let sens =
        if List.exists (fun (f, _) -> Field.equal f field) sens then
          List.map
            (fun (f, s) -> if Field.equal f field then (f, v) else (f, s))
            sens
        else sens @ [ (field, v) ]
      in
      try
        let profile =
          User_profile.make ~sensitivities:sens
            ~agreed_services:(User_profile.agreed_services profile)
            ()
        in
        Ok { inputs with profile = Some profile }
      with Invalid_argument msg -> Error msg))
  | Set_agreement { service; agreed } -> (
    match inputs.profile with
    | None -> Error "no user profile to edit"
    | Some profile ->
      let services = User_profile.agreed_services profile in
      let already = List.mem service services in
      if already = agreed then Ok inputs (* vacuous *)
      else
        let services =
          if agreed then services @ [ service ]
          else List.filter (fun s -> s <> service) services
        in
        let profile =
          User_profile.make
            ~sensitivities:(User_profile.sensitivities profile)
            ~agreed_services:services ()
        in
        Ok { inputs with profile = Some profile })
  | Set_bindings bindings -> Ok { inputs with bindings }

let apply_all inputs edits =
  List.fold_left
    (fun acc edit ->
      match acc with Error _ as e -> e | Ok i -> apply i edit)
    (Ok inputs) edits

(* ----- invalidation analysis ----- *)

type invalidation = {
  inv_lts : bool;
  inv_cone : bool;
      (* inv_lts is set solely by concrete ACL tuples on an unchanged
         diagram with no binding interplay: the LTS damage is scoped to
         the touched stores' reachability cones, and a cone-scoped
         re-exploration ([Regen]) may answer the edit without a cold
         run. Candidacy only — [Regen.make_patch] makes the final call
         (it must compare compiled guards). *)
  inv_plan : bool;
  inv_risk : bool;
  inv_classes : bool;
  inv_sigma : (Field.t * float) list option;
      (* [Some changes] when the profile edit is a pure sensitivity
         delta (same agreed services): the fields whose σ changed, with
         their new values. Population aggregation can then re-evaluate
         only the equivalence classes whose σ actually moves instead of
         all of them. [None]: profile unchanged or not a pure σ
         delta. *)
  inv_pseudonym : bool;
  inv_consistency : bool;
}

let nothing =
  {
    inv_lts = false;
    inv_cone = false;
    inv_plan = false;
    inv_risk = false;
    inv_classes = false;
    inv_sigma = None;
    inv_pseudonym = false;
    inv_consistency = false;
  }

let everything =
  {
    inv_lts = true;
    inv_cone = false;
    inv_plan = true;
    inv_risk = true;
    inv_classes = true;
    inv_sigma = None;
    inv_pseudonym = true;
    inv_consistency = true;
  }

(* Fields that can ever reach [store]'s contents: the created (stored)
   fields of the active create/anon flows into it, filtered by the
   writers' Write permission when enforcement is on. Exploration reads —
   from-flow, potential, granular — all fetch from store contents, so a
   Read grant on a field outside this set is invisible to the LTS. *)
let writable_fields ~(options : Generate.options) diagram policy store =
  let active (svc : Service.t) =
    match options.services with
    | None -> true
    | Some ids -> List.mem svc.id ids
  in
  List.concat_map
    (fun ((svc : Service.t), (flow : Flow.t)) ->
      if not (active svc) then []
      else
        match (Diagram.classify diagram flow, flow.dst) with
        | (Flow.Create | Flow.Anon), Flow.Store s when s = store ->
          let actor = Flow.node_name flow.src in
          let created =
            match Diagram.classify diagram flow with
            | Flow.Anon -> List.map Field.anon_of flow.fields
            | _ -> flow.fields
          in
          if options.enforce_policy then
            List.filter
              (fun f ->
                Policy.allows policy ~diagram ~actor Permission.Write
                  ~store f)
              created
          else created
        | _ -> [])
    (Diagram.all_flows diagram)

(* Store-level deleter sets — the only §III-A consumer of Delete
   permissions when potential deletes are off. *)
let deleter_sets diagram policy =
  List.map
    (fun (ds : Datastore.t) ->
      let fields = Diagram.all_fields diagram in
      List.filter_map
        (fun (a : Actor.t) ->
          if
            List.exists
              (fun f ->
                Policy.allows policy ~diagram ~actor:a.id
                  Permission.Delete ~store:ds.id f)
              fields
          then Some a.id
          else None)
        diagram.Diagram.actors)
    diagram.Diagram.datastores

(* The pure-sensitivity delta of a profile edit: the fields whose σ
   changed, with their new values — [None] when the agreed-service sets
   differ (allowance and likelihood scenarios move, not just σ). *)
let sigma_delta a b =
  match (a, b) with
  | Some a, Some b
    when User_profile.agreed_services a = User_profile.agreed_services b ->
    let fields =
      List.sort_uniq Field.compare
        (List.map fst (User_profile.sensitivities a)
        @ List.map fst (User_profile.sensitivities b))
    in
    Some
      (List.filter_map
         (fun f ->
           let va = User_profile.sensitivity a f
           and vb = User_profile.sensitivity b f in
           if va <> vb then Some (f, vb) else None)
         fields)
  | _ -> None

let profile_equal a b =
  match (a, b) with
  | None, None -> true
  | Some a, Some b ->
    User_profile.agreed_services a = User_profile.agreed_services b
    && List.length (User_profile.sensitivities a)
       = List.length (User_profile.sensitivities b)
    && List.for_all2
         (fun (fa, sa) (fb, sb) -> Field.equal fa fb && sa = sb)
         (User_profile.sensitivities a)
         (User_profile.sensitivities b)
  | _ -> false

let classify ~(options : Generate.options) ~before ~after =
  if before.diagram != after.diagram then everything
  else begin
    let removed, added =
      if before.policy == after.policy then ([], [])
      else Policy.diff ~before:before.policy ~after:after.policy
          before.diagram
    in
    let tuples = removed @ added in
    let bindings_changed = before.bindings != after.bindings in
    (* The pseudonym pass reads Read permissions ([readable_anywhere]);
       any concrete policy change under active bindings forces a full
       re-run, and the pass grows the LTS — so the LTS itself cannot be
       reused either. Likewise, changing a non-empty binding set: the
       previous pass already grew the LTS and appends cannot be undone. *)
    if
      (tuples <> [] && after.bindings <> [])
      || (bindings_changed && before.bindings <> [])
    then everything
    else begin
      let writable = Hashtbl.create 4 in
      let writable_in policy store f =
        let key = (store, options.enforce_policy, policy == after.policy) in
        let fields =
          match Hashtbl.find_opt writable key with
          | Some fs -> fs
          | None ->
            let fs =
              writable_fields ~options before.diagram policy store
            in
            Hashtbl.add writable key fs;
            fs
        in
        List.exists (Field.equal f) fields
      in
      let lts_preserving (t : Policy.grant_tuple) =
        match t.perm with
        | Permission.Delete -> not options.potential_deletes
        | Permission.Write ->
          (not options.enforce_policy)
          || not
               (List.exists
                  (fun ((svc : Service.t), (flow : Flow.t)) ->
                    (match options.services with
                    | None -> true
                    | Some ids -> List.mem svc.id ids)
                    &&
                    match (Diagram.classify before.diagram flow, flow.dst)
                    with
                    | (Flow.Create | Flow.Anon), Flow.Store s ->
                      s = t.store
                      && Flow.node_name flow.src = t.actor
                      && List.exists (Field.equal t.field)
                           (match
                              Diagram.classify before.diagram flow
                            with
                           | Flow.Anon ->
                             List.map Field.anon_of flow.fields
                           | _ -> flow.fields)
                    | _ -> false)
                  (Diagram.all_flows before.diagram))
        | Permission.Read ->
          (* Sound for both removals and additions: the field can reach
             the store's contents under neither policy. *)
          (not (writable_in before.policy t.store t.field))
          && not (writable_in after.policy t.store t.field)
      in
      let profile_changed = not (profile_equal before.profile after.profile) in
      let inv_sigma =
        if profile_changed then sigma_delta before.profile after.profile
        else None
      in
      if not (List.for_all lts_preserving tuples) then
        (* The LTS must change, but only because of concrete ACL tuples
           on an unchanged diagram with no binding interplay — the
           damage is confined to the touched stores' cones. Everything
           downstream still invalidates (the cone path recompiles plan
           and report over the rebuilt fragment); [inv_cone] flags that
           the rebuild need not be cold. *)
        { everything with inv_cone = true; inv_sigma }
      else begin
        let has perm =
          List.exists
            (fun (t : Policy.grant_tuple) -> Permission.equal t.perm perm)
            tuples
        in
        let deleters_changed =
          has Permission.Delete
          && deleter_sets before.diagram before.policy
             <> deleter_sets before.diagram after.policy
        in
        {
          inv_lts = false;
          inv_cone = false;
          inv_plan = deleters_changed;
          inv_risk = deleters_changed || profile_changed;
          inv_classes = false;
          inv_sigma;
          inv_pseudonym = bindings_changed;
          (* Gaps query only Read and Write over flow fields. *)
          inv_consistency = has Permission.Read || has Permission.Write;
        }
      end
    end
  end

(* ----- parsing and printing (CLI --edit specs, serve requests) -----

   The spec syntax is positional with ':' separators and ','/'='/'>'
   sub-separators, so identifiers containing any of those (or
   whitespace, or a double quote, or nothing at all) are double-quoted
   on output, with backslash escapes for '"' and '\'. The parser splits
   outside quoted runs and unquotes each token, so [parse (to_string e)
   = Ok e] for every printable edit (checked by a qcheck property). *)

let needs_quoting s =
  s = ""
  || String.exists
       (function
         | ':' | ',' | '=' | '>' | '"' | '\\' | ' ' | '\t' | '\n' | '\r' ->
           true
         | _ -> false)
       s

let quote_force s =
  let b = Buffer.create (String.length s + 2) in
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      if c = '"' || c = '\\' then Buffer.add_char b '\\';
      Buffer.add_char b c)
    s;
  Buffer.add_char b '"';
  Buffer.contents b

let quote_tok s = if needs_quoting s then quote_force s else s

let has_prefix p s =
  String.length s >= String.length p && String.sub s 0 (String.length p) = p

(* Split on [sep] outside double-quoted runs (backslash escapes the
   next character inside quotes); [None] on an unterminated quote. *)
let split_quoted sep s =
  let parts = ref [] and b = Buffer.create 16 in
  let n = String.length s in
  let i = ref 0 and in_q = ref false in
  while !i < n do
    let c = s.[!i] in
    if !in_q then
      if c = '\\' && !i + 1 < n then begin
        Buffer.add_char b c;
        incr i;
        Buffer.add_char b s.[!i]
      end
      else begin
        if c = '"' then in_q := false;
        Buffer.add_char b c
      end
    else if c = sep then begin
      parts := Buffer.contents b :: !parts;
      Buffer.clear b
    end
    else begin
      if c = '"' then in_q := true;
      Buffer.add_char b c
    end;
    incr i
  done;
  if !in_q then None else Some (List.rev (Buffer.contents b :: !parts))

(* Undo [quote_tok]: a token starting with '"' must be one fully quoted
   run; anything else is literal (and must not contain a stray quote). *)
let unquote s =
  let n = String.length s in
  if n >= 2 && s.[0] = '"' && s.[n - 1] = '"' then begin
    let b = Buffer.create n in
    let i = ref 1 and ok = ref true in
    while !i < n - 1 do
      (match s.[!i] with
      | '\\' when !i + 1 < n - 1 ->
        incr i;
        Buffer.add_char b s.[!i]
      | '"' -> ok := false
      | c -> Buffer.add_char b c);
      incr i
    done;
    if !ok then Some (Buffer.contents b) else None
  end
  else if String.contains s '"' then None
  else Some s

let pp_subject_string = function
  | Acl.Actor_subject a ->
    (* an actor literally named "role.X" must not re-parse as a role *)
    if has_prefix "role." a then quote_force a else quote_tok a
  | Acl.Role_subject r -> "role." ^ quote_tok r

let node_spec_string = function
  | Flow.User -> "user"
  | Flow.Actor a -> "actor." ^ quote_tok a
  | Flow.Store s -> "store." ^ quote_tok s

let fields_string fs = String.concat "," (List.map (fun f -> quote_tok (Field.name f)) fs)

let pp ppf = function
  | Grant { effect_ = Acl.Allow; subject; store; selector; perms } ->
    Format.fprintf ppf "grant:%s:%s:%s%s" (pp_subject_string subject)
      (String.concat "," (List.map Permission.to_string perms))
      (quote_tok store)
      (match selector with
      | Acl.All_fields -> ""
      | Acl.Fields fs -> ":" ^ fields_string fs)
  | Grant _ -> Format.pp_print_string ppf "grant:<deny-entry>"
  | Revoke { subject; store; fields; perms } ->
    Format.fprintf ppf "revoke:%s:%s:%s%s" (pp_subject_string subject)
      (String.concat "," (List.map Permission.to_string perms))
      (quote_tok store)
      (match fields with
      | None -> ""
      | Some fs -> ":" ^ fields_string fs)
  | Add_flow { service; flow } ->
    Format.fprintf ppf "flow+:%s:%d:%s>%s:%s:%s" (quote_tok service)
      flow.Flow.order
      (node_spec_string flow.src)
      (node_spec_string flow.dst)
      (fields_string flow.fields)
      (quote_tok flow.purpose)
  | Remove_flow { service; order } ->
    Format.fprintf ppf "flow-:%s:%d" (quote_tok service) order
  | Set_sensitivity (f, v) ->
    Format.fprintf ppf "sensitivity:%s=%.17g" (quote_tok (Field.name f)) v
  | Set_agreement { service; agreed } ->
    Format.fprintf ppf "agree:%c%s"
      (if agreed then '+' else '-')
      (quote_tok service)
  | Set_bindings bs ->
    Format.fprintf ppf "bindings:<%d binding(s)>" (List.length bs)

let to_string t = Format.asprintf "%a" pp t

let parse_subject s =
  if has_prefix "role." s then
    Option.map
      (fun r -> Acl.Role_subject r)
      (unquote (String.sub s 5 (String.length s - 5)))
  else Option.map (fun a -> Acl.Actor_subject a) (unquote s)

let parse_perms s =
  let parts = String.split_on_char ',' s in
  let perms = List.filter_map Permission.of_string parts in
  if List.length perms = List.length parts && perms <> [] then Some perms
  else None

let parse_fields s =
  match split_quoted ',' s with
  | None -> None
  | Some parts ->
    let names = List.filter_map unquote parts in
    if List.length names = List.length parts then
      Some (List.map Field.make names)
    else None

let parse_node s =
  let sub p = unquote (String.sub s (String.length p) (String.length s - String.length p)) in
  let bad () =
    Error
      (Printf.sprintf "bad node %S (expected user, actor.NAME or store.NAME)"
         s)
  in
  if s = "user" then Ok Flow.User
  else if has_prefix "actor." s then
    match sub "actor." with Some a -> Ok (Flow.Actor a) | None -> bad ()
  else if has_prefix "store." s then
    match sub "store." with Some st -> Ok (Flow.Store st) | None -> bad ()
  else bad ()

let parse spec =
  let err () =
    Error
      (Printf.sprintf
         "bad edit %S (expected grant:SUBJ:PERMS:STORE[:FIELDS], \
          revoke:SUBJ:PERMS:STORE[:FIELDS], flow-:SERVICE:ORDER, \
          flow+:SERVICE:ORDER:SRC>DST:FIELDS[:PURPOSE], \
          sensitivity:FIELD=V or agree:{+,-}SERVICE)"
         spec)
  in
  let ( let* ) o f = match o with Some v -> f v | None -> err () in
  match split_quoted ':' spec with
  | None -> err ()
  | Some parts -> (
    match parts with
    | [ "grant"; subj; perms; store ] | [ "grant"; subj; perms; store; "" ]
      ->
      let* perms = parse_perms perms in
      let* subject = parse_subject subj in
      let* store = unquote store in
      Ok (Grant (Acl.allow subject ~store perms))
    | [ "grant"; subj; perms; store; fields ] ->
      let* perms = parse_perms perms in
      let* subject = parse_subject subj in
      let* store = unquote store in
      let* fields = parse_fields fields in
      Ok (Grant (Acl.allow subject ~store ~fields perms))
    | [ "revoke"; subj; perms; store ] ->
      let* perms = parse_perms perms in
      let* subject = parse_subject subj in
      let* store = unquote store in
      Ok (Revoke { subject; store; fields = None; perms })
    | [ "revoke"; subj; perms; store; fields ] ->
      let* perms = parse_perms perms in
      let* subject = parse_subject subj in
      let* store = unquote store in
      let* fields = parse_fields fields in
      Ok (Revoke { subject; store; fields = Some fields; perms })
    | [ "flow-"; service; order ] ->
      let* order = int_of_string_opt order in
      let* service = unquote service in
      Ok (Remove_flow { service; order })
    | "flow+" :: service :: order :: endpoints :: fields :: rest -> (
      let* purpose =
        match rest with
        | [] -> Some "whatif"
        | [ p ] -> unquote p
        | _ -> None
      in
      let* order = int_of_string_opt order in
      let* service = unquote service in
      let* fields = parse_fields fields in
      let* nodes =
        match split_quoted '>' endpoints with
        | Some [ src; dst ] -> Some (src, dst)
        | _ -> None
      in
      let src_s, dst_s = nodes in
      match (parse_node src_s, parse_node dst_s) with
      | Ok src, Ok dst -> (
        try
          Ok
            (Add_flow
               { service; flow = Flow.make ~order ~src ~dst ~fields ~purpose })
        with Invalid_argument msg -> Error msg)
      | Error e, _ | _, Error e -> Error e)
    | [ "sensitivity"; assign ] -> (
      match split_quoted '=' assign with
      | Some [ f; v ] -> (
        let* f = unquote f in
        match float_of_string_opt v with
        | Some v when v >= 0.0 && v <= 1.0 ->
          Ok (Set_sensitivity (Field.make f, v))
        | _ -> err ())
      | _ -> err ())
    | [ "agree"; svc ] when String.length svc > 1 -> (
      let service_s = String.sub svc 1 (String.length svc - 1) in
      let* service = unquote service_s in
      match svc.[0] with
      | '+' -> Ok (Set_agreement { service; agreed = true })
      | '-' -> Ok (Set_agreement { service; agreed = false })
      | _ -> err ())
    | _ -> err ())

let parse_all specs =
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | s :: rest -> (
      match parse s with
      | Ok e -> go (e :: acc) rest
      | Error _ as e -> e)
  in
  go [] specs

(* ----- batch canonicalisation (serve result-cache keys) ----- *)

(* Two edits commute when applying them in either order yields the same
   [inputs] (including the same success/failure outcome). ACL edits
   always commute: deny-overrides makes [Policy.allows] a set query over
   the entry list, and validation only reads the (unchanged) diagram.
   Flow edits commute across services; profile edits across targets.
   ACL and flow edits do NOT commute — [Policy.validate] reads the
   diagram's field and store sets, which a flow edit changes. *)
let commutes a b =
  let cat = function
    | Grant _ | Revoke _ -> `Acl
    | Add_flow _ | Remove_flow _ -> `Flow
    | Set_sensitivity _ | Set_agreement _ | Set_bindings _ -> `Profile
  in
  match (cat a, cat b) with
  | `Acl, `Acl -> true
  | `Flow, `Flow -> (
    match (a, b) with
    | ( (Add_flow { service = sa; _ } | Remove_flow { service = sa; _ }),
        (Add_flow { service = sb; _ } | Remove_flow { service = sb; _ }) ) ->
      sa <> sb
    | _ -> false)
  | `Acl, `Flow | `Flow, `Acl -> false
  | `Profile, `Profile -> (
    match (a, b) with
    | Set_sensitivity (fa, _), Set_sensitivity (fb, _) ->
      not (Field.equal fa fb)
    | Set_agreement { service = sa; _ }, Set_agreement { service = sb; _ } ->
      sa <> sb
    | Set_sensitivity _, Set_agreement _ | Set_agreement _, Set_sensitivity _
      ->
      true
    | _ -> false)
  | `Profile, (`Acl | `Flow) | (`Acl | `Flow), `Profile -> true

(* [overwrites later earlier]: the later edit wholly replaces the
   earlier one's effect and nothing between them observes the profile,
   so the earlier edit is dead in any batch where both appear. *)
let overwrites later earlier =
  match (later, earlier) with
  | Set_bindings _, Set_bindings _ -> true
  | Set_sensitivity (fa, _), Set_sensitivity (fb, _) -> Field.equal fa fb
  | Set_agreement { service = sa; _ }, Set_agreement { service = sb; _ } ->
    sa = sb
  | _ -> false

let canonical_batch edits =
  (* drop profile edits shadowed by a later edit on the same target *)
  let rec dedup = function
    | [] -> []
    | e :: rest ->
      let shadowed = List.exists (fun later -> overwrites later e) rest in
      let rest = dedup rest in
      if shadowed then rest else e :: rest
  in
  let edits = dedup edits in
  (* sort by printed form, swapping only adjacent commuting pairs: each
     swap removes exactly one inversion, so this terminates at a batch
     canonical among all equivalent reorderings reachable this way *)
  let arr = Array.of_list edits in
  let n = Array.length arr in
  let swapped = ref (n > 1) in
  while !swapped do
    swapped := false;
    for i = 0 to n - 2 do
      if
        commutes arr.(i) arr.(i + 1)
        && String.compare (to_string arr.(i)) (to_string arr.(i + 1)) > 0
      then begin
        let t = arr.(i) in
        arr.(i) <- arr.(i + 1);
        arr.(i + 1) <- t;
        swapped := true
      end
    done
  done;
  (* adjacent structurally equal ACL edits are idempotent *)
  let rec squash = function
    | a :: b :: rest
      when (match a with Grant _ | Revoke _ -> true | _ -> false) && a = b
      ->
      squash (b :: rest)
    | a :: rest -> a :: squash rest
    | [] -> []
  in
  squash (Array.to_list arr)
