(** Generation-time configurations.

    The paper's LTS states are privacy states; generating the reachable
    system additionally needs the operational context — which fields each
    datastore currently holds and which flows have executed. A [Config.t]
    bundles all three and is what the generator hash-conses; analyses
    project out the privacy state. *)

open Mdp_prelude

type t = {
  privacy : Privacy_state.t;
  stores : Bitset.t array;  (** Per store index: field indices present. *)
  executed : Bitset.t;  (** Flow indices already run. *)
}

val initial : Universe.t -> t
(** Absolute privacy, empty stores, no flows executed. *)

val copy : t -> t
val equal : t -> t -> bool
val hash : t -> int

(** {1 Packed-word codec}

    A config is fully determined by the payload words of its bitsets;
    the packed LTS engine stores only those words. Layout: [privacy.has],
    [privacy.could], each store in index order, [executed]. *)

val nwords : t -> int
(** Total payload word count — a constant for all configs of one
    universe. *)

val blit_words : t -> int array -> int -> int
(** Write the words into the buffer at the offset; returns the offset
    past the last word written. *)

val of_words : template:t -> int array -> int -> t
(** Rebuild a config from words previously written by {!blit_words}.
    [template] supplies the shape (bitset capacities, store count) and
    must come from the same universe. *)

val store_has : t -> store:int -> field:int -> bool
val executed : t -> flow:int -> bool

val pp : Universe.t -> Format.formatter -> t -> unit
(** Compact: the true privacy variables plus non-empty store contents. *)
