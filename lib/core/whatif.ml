open Mdp_dataflow
open Mdp_policy

(* The interactive what-if sweep (the batched form of the §IV-A edit
   loop): prepare the base analysis once — per-finding-site scenario
   terms, finding signatures, per-slot indices — then evaluate each
   candidate edit as a delta against that substrate. A candidate whose
   edit only flips maintenance-exposure flags or σ values re-levels
   just the affected signatures' sites (microseconds to milliseconds);
   candidates that would change the reachable transition structure are
   classified, not recomputed, unless [~exact] asks for the full
   incremental run. *)

type classification = Unchanged | Delta | Cone | Replay | Full_rerun

let classification_to_string = function
  | Unchanged -> "unchanged"
  | Delta -> "delta"
  | Cone -> "cone"
  | Replay -> "replay"
  | Full_rerun -> "full-rerun"

type outcome = {
  edit : Edit.t;
  classification : classification;
  diff : Risk_diff.t option;
  worst_after : Level.t option;
}

type base = {
  analysis : Analysis.t;
  plan : Risk_plan.t;
  profile : User_profile.t;
  options : Generate.options;
  inputs : Edit.inputs;
  sites : Risk_plan.site array;
  slot_allowed : bool array;
  slot_index : (string * string, int) Hashtbl.t;
      (** (actor, store) -> slot, store-bearing slots only. *)
  signatures : Risk_diff.signature array;
  sig_sites : int array array;
  slot_sigs : int array array;
  sigs_by_field : (string, int list) Hashtbl.t;
  base_sig_level : Level.t array;
  base_hist : int array;  (** Signature count per [Level.rank]. *)
  present_before : int;  (** Signatures with a base level above None. *)
  worst_before : Level.t;
}

let worst_before base = base.worst_before
let num_signatures base = Array.length base.signatures
let num_sites base = Array.length base.sites

let prepare analysis =
  match
    ( analysis.Analysis.plan,
      analysis.Analysis.params.Analysis.profile,
      analysis.Analysis.disclosure )
  with
  | Some plan, Some profile, Some _ ->
    Mdp_obs.Metrics.span "whatif/prepare" @@ fun () ->
    let inputs = Analysis.inputs_of analysis in
    let sites = Risk_plan.finding_sites plan profile in
    let slots = Risk_plan.slots plan in
    let nslots = Array.length slots in
    let allowed = User_profile.allowed_actors profile inputs.Edit.diagram in
    let slot_allowed =
      Array.map (fun (actor, _) -> List.mem actor allowed) slots
    in
    let slot_index = Hashtbl.create (max nslots 1) in
    Array.iteri
      (fun i (actor, store) ->
        match store with
        | Some s -> Hashtbl.replace slot_index (actor, s) i
        | None -> ())
      slots;
    (* Intern finding signatures: findable entries are reads, so a
       signature is one (slot, sorted field names) pair. *)
    let sig_ids : (int * string list, int) Hashtbl.t = Hashtbl.create 64 in
    let sig_list = ref [] and nsigs = ref 0 in
    let site_sig =
      Array.map
        (fun (s : Risk_plan.site) ->
          let key = (s.site_slot, s.site_fields) in
          match Hashtbl.find_opt sig_ids key with
          | Some id -> id
          | None ->
            let id = !nsigs in
            incr nsigs;
            Hashtbl.add sig_ids key id;
            let actor, store = slots.(s.site_slot) in
            sig_list :=
              ( {
                  Risk_diff.actor;
                  store;
                  kind = Action.Read;
                  fields = s.site_fields;
                },
                s.site_slot )
              :: !sig_list;
            id)
        sites
    in
    let sig_pairs = Array.of_list (List.rev !sig_list) in
    let signatures = Array.map fst sig_pairs in
    let sig_slot = Array.map snd sig_pairs in
    let nsigs = !nsigs in
    let sig_site_lists = Array.make nsigs [] in
    Array.iteri
      (fun i id -> sig_site_lists.(id) <- i :: sig_site_lists.(id))
      site_sig;
    let sig_sites =
      Array.map (fun l -> Array.of_list (List.rev l)) sig_site_lists
    in
    let slot_sig_lists = Array.make (max nslots 1) [] in
    Array.iteri
      (fun id slot -> slot_sig_lists.(slot) <- id :: slot_sig_lists.(slot))
      sig_slot;
    let slot_sigs =
      Array.map (fun l -> Array.of_list (List.rev l)) slot_sig_lists
    in
    let sigs_by_field = Hashtbl.create 64 in
    Array.iteri
      (fun id (s : Risk_diff.signature) ->
        List.iter
          (fun f ->
            let prev =
              Option.value (Hashtbl.find_opt sigs_by_field f) ~default:[]
            in
            Hashtbl.replace sigs_by_field f (id :: prev))
          s.fields)
      signatures;
    Hashtbl.iter
      (fun f ids -> Hashtbl.replace sigs_by_field f (List.rev ids))
      (Hashtbl.copy sigs_by_field);
    let base_sig_level = Array.make nsigs Level.None_ in
    Array.iteri
      (fun i (s : Risk_plan.site) ->
        let lvl =
          Risk_plan.site_level plan s ~maintenance:s.site_maintenance
        in
        let id = site_sig.(i) in
        base_sig_level.(id) <- Level.max base_sig_level.(id) lvl)
      sites;
    let base_hist = Array.make 4 0 in
    let present_before = ref 0 and worst = ref Level.None_ in
    Array.iter
      (fun lvl ->
        base_hist.(Level.rank lvl) <- base_hist.(Level.rank lvl) + 1;
        if Level.compare lvl Level.None_ > 0 then incr present_before;
        worst := Level.max !worst lvl)
      base_sig_level;
    Ok
      {
        analysis;
        plan;
        profile;
        options = analysis.Analysis.params.Analysis.options;
        inputs;
        sites;
        slot_allowed;
        slot_index;
        signatures;
        sig_sites;
        slot_sigs;
        sigs_by_field;
        base_sig_level;
        base_hist;
        present_before = !present_before;
        worst_before = !worst;
      }
  | _ -> Error "what-if needs an analysis run with a user profile"

(* ----- candidate enumeration ----- *)

let acl_candidates base =
  let grants =
    Policy.concrete_grants base.inputs.Edit.policy base.inputs.Edit.diagram
  in
  (* Read/Write grants are field-granular in both the LTS and the
     report, so each concrete tuple is its own candidate. Maintenance
     exposure is store-level (an actor is a deleter while it holds
     Delete on {e any} field), so the meaningful Delete candidate is the
     whole-store revocation — per-field ones are provably no-ops. *)
  let seen_delete = Hashtbl.create 16 in
  List.filter_map
    (fun (t : Policy.grant_tuple) ->
      let fields =
        if t.perm = Permission.Delete then begin
          if Hashtbl.mem seen_delete (t.actor, t.store) then None
          else begin
            Hashtbl.add seen_delete (t.actor, t.store) ();
            Some None
          end
        end
        else Some (Some [ t.field ])
      in
      Option.map
        (fun fields ->
          Edit.Revoke
            {
              subject = Acl.Actor_subject t.actor;
              store = t.store;
              fields;
              perms = [ t.perm ];
            })
        fields)
    grants

(* ----- delta evaluation ----- *)

let unchanged_outcome base edit =
  {
    edit;
    classification = Unchanged;
    diff =
      Some
        {
          Risk_diff.removed = [];
          added = [];
          changed = [];
          unchanged = base.present_before;
        };
    worst_after = Some base.worst_before;
  }

(* Re-level the given signatures with [site_after] giving each affected
   site its new level, and fold the result into a [Risk_diff.t] plus the
   new worst level. O(sites of affected signatures). *)
let relevel base affected site_after =
  let hist = Array.copy base.base_hist in
  let removed = ref [] and added = ref [] and changed = ref [] in
  let affected_present_before = ref 0 and unchanged_affected = ref 0 in
  let worst_affected = ref Level.None_ in
  List.iter
    (fun id ->
      let before = base.base_sig_level.(id) in
      let after =
        Array.fold_left
          (fun acc i -> Level.max acc (site_after i base.sites.(i)))
          Level.None_ base.sig_sites.(id)
      in
      hist.(Level.rank before) <- hist.(Level.rank before) - 1;
      hist.(Level.rank after) <- hist.(Level.rank after) + 1;
      worst_affected := Level.max !worst_affected after;
      let pb = Level.compare before Level.None_ > 0 in
      let pa = Level.compare after Level.None_ > 0 in
      if pb then incr affected_present_before;
      let change = { Risk_diff.signature = base.signatures.(id); before; after } in
      if pb && not pa then removed := change :: !removed
      else if pa && not pb then added := change :: !added
      else if pb && pa then
        if Level.equal before after then incr unchanged_affected
        else changed := change :: !changed)
    affected;
  let worst =
    let w = ref Level.None_ in
    for r = 3 downto 1 do
      if !w = Level.None_ && hist.(r) > 0 then
        w := (match r with 1 -> Level.Low | 2 -> Level.Medium | _ -> Level.High)
    done;
    !w
  in
  let diff =
    {
      Risk_diff.removed = List.rev !removed;
      added = List.rev !added;
      changed = List.rev !changed;
      unchanged =
        base.present_before - !affected_present_before + !unchanged_affected;
    }
  in
  (diff, worst)

(* Maintenance-exposure delta: the edit changed some store-level deleter
   sets. Affected signatures are those of the (actor, store) slots whose
   membership flipped; each of their sites re-levels with the flag
   overridden. *)
let maintenance_delta base (after : Edit.inputs) =
  let before_sets =
    Edit.deleter_sets base.inputs.Edit.diagram base.inputs.Edit.policy
  in
  let after_sets =
    Edit.deleter_sets base.inputs.Edit.diagram after.Edit.policy
  in
  let stores = base.inputs.Edit.diagram.Diagram.datastores in
  (* slot -> new maintenance flag, for flipped (actor, store) pairs. *)
  let flips = Hashtbl.create 4 in
  List.iteri
    (fun i (ds : Datastore.t) ->
      let b = List.nth before_sets i and a = List.nth after_sets i in
      List.iter
        (fun actor ->
          let was = List.mem actor b and is_ = List.mem actor a in
          if was <> is_ then
            match Hashtbl.find_opt base.slot_index (actor, ds.Datastore.id) with
            | Some slot -> Hashtbl.replace flips slot is_
            | None -> ())
        (Mdp_prelude.Listx.dedup (b @ a)))
    stores;
  let affected =
    Hashtbl.fold
      (fun slot _ acc -> Array.to_list base.slot_sigs.(slot) @ acc)
      flips []
    |> List.sort_uniq compare
  in
  relevel base affected (fun _ (s : Risk_plan.site) ->
      let maintenance =
        match Hashtbl.find_opt flips s.Risk_plan.site_slot with
        | Some flag -> flag
        | None -> s.site_maintenance
      in
      Risk_plan.site_level base.plan s ~maintenance)

(* Sensitivity delta: σ(field) changed; affected signatures are those
   whose field set contains it. Likelihood terms are untouched; impact
   re-evaluates as max σ' over the site's fields (0 stays 0 for allowed
   actors). *)
let sensitivity_delta base (after : Edit.inputs) field =
  let name = Field.name field in
  let affected =
    Option.value (Hashtbl.find_opt base.sigs_by_field name) ~default:[]
  in
  let profile' = Option.get after.Edit.profile in
  let sens = Hashtbl.create 16 in
  List.iter
    (fun (f, v) -> Hashtbl.replace sens (Field.name f) v)
    (User_profile.sensitivities profile');
  let sigma n = Option.value (Hashtbl.find_opt sens n) ~default:0.0 in
  relevel base affected (fun _ (s : Risk_plan.site) ->
      if base.slot_allowed.(s.Risk_plan.site_slot) then Level.None_
      else
        let impact =
          List.fold_left
            (fun acc n -> Float.max acc (sigma n))
            0.0 s.site_fields
        in
        Risk_plan.site_level base.plan
          { s with site_impact = impact }
          ~maintenance:s.site_maintenance)

(* Cone-scoped evaluation: a pure policy-shrink edit re-explored only
   through the affected store classes' cones ([Regen.walk]). For a
   Read/Write ACL edit a finding's level is a pure function of its
   label, so the distinct findable labels reachable in the edited model
   determine the after-report's signature levels — max level per
   signature over the walked labels, then a set diff against the base
   signature levels. Read-only on the base (fresh labeller, finder and
   scratch per call), so it parallelises like the delta path. Change
   lists come out sorted by signature — same sets as the exact path,
   canonical order. *)
let cone_outcome base edit (after : Edit.inputs) =
  let u_old = base.analysis.Analysis.universe in
  let u = Universe.make after.Edit.diagram after.Edit.policy in
  match Regen.make_patch ~u_old ~u base.options with
  | None -> None
  | Some patch -> (
    Mdp_obs.Metrics.span "whatif/cone" @@ fun () ->
    match Regen.walk patch base.analysis.Analysis.lts with
    | None -> None
    | Some w ->
      Mdp_obs.Metrics.incr "whatif/cone_hits";
      let lb = Risk_plan.make_labeller u in
      let matrix = Risk_plan.matrix base.plan in
      let model = Risk_plan.model base.plan in
      let view = Risk_plan.view base.plan base.profile in
      let after_levels : (Risk_diff.signature, Level.t) Hashtbl.t =
        Hashtbl.create 64
      in
      List.iter
        (fun (a : Action.t) ->
          let lvl = Risk_plan.label_level lb ~matrix ~model view a in
          if Level.compare lvl Level.None_ > 0 then begin
            let s =
              {
                Risk_diff.actor = a.Action.actor;
                store = a.Action.store;
                kind = a.Action.kind;
                fields =
                  List.sort String.compare (List.map Field.name a.fields);
              }
            in
            let prev =
              Option.value (Hashtbl.find_opt after_levels s)
                ~default:Level.None_
            in
            Hashtbl.replace after_levels s (Level.max prev lvl)
          end)
        w.Regen.wk_labels;
      let worst_after = ref Level.None_ in
      Hashtbl.iter
        (fun _ lvl -> worst_after := Level.max !worst_after lvl)
        after_levels;
      let removed = ref [] and added = ref [] and changed = ref [] in
      let unchanged = ref 0 in
      Array.iteri
        (fun id before ->
          if Level.compare before Level.None_ > 0 then begin
            let s = base.signatures.(id) in
            match Hashtbl.find_opt after_levels s with
            | Some after_l ->
              Hashtbl.remove after_levels s;
              if Level.equal before after_l then incr unchanged
              else
                changed :=
                  { Risk_diff.signature = s; before; after = after_l }
                  :: !changed
            | None ->
              removed :=
                { Risk_diff.signature = s; before; after = Level.None_ }
                :: !removed
          end)
        base.base_sig_level;
      (* anything left was absent from the base report: shrunk labels
         can intern fresh signatures (smaller field sets) *)
      Hashtbl.iter
        (fun s after_l ->
          added :=
            { Risk_diff.signature = s; before = Level.None_; after = after_l }
            :: !added)
        after_levels;
      let by_sig (a : Risk_diff.change) (b : Risk_diff.change) =
        compare a.Risk_diff.signature b.Risk_diff.signature
      in
      let diff =
        {
          Risk_diff.removed = List.sort by_sig !removed;
          added = List.sort by_sig !added;
          changed = List.sort by_sig !changed;
          unchanged = !unchanged;
        }
      in
      Some
        {
          edit;
          classification = Cone;
          diff = Some diff;
          worst_after = Some !worst_after;
        })

(* ----- per-candidate evaluation ----- *)

let exact_outcome base edit classification =
  let t = Analysis.run_incremental ~previous:base.analysis [ edit ] in
  let before = Option.get base.analysis.Analysis.disclosure in
  let after = Option.get t.Analysis.disclosure in
  {
    edit;
    classification;
    diff = Some (Risk_diff.diff ~before ~after);
    worst_after = Some (Disclosure_risk.max_level after);
  }

let eval_edit ?(exact = false) base edit =
  match Edit.apply base.inputs edit with
  | Error msg -> Error msg
  | Ok after ->
    let inv = Edit.classify ~options:base.options ~before:base.inputs ~after in
    if inv.Edit.inv_lts then begin
      Mdp_obs.Metrics.incr "whatif/invalidated_lts";
      match
        if inv.Edit.inv_cone then cone_outcome base edit after else None
      with
      | Some o -> Ok o
      | None ->
        if exact then Ok (exact_outcome base edit Full_rerun)
        else
          Ok
            {
              edit;
              classification = Full_rerun;
              diff = None;
              worst_after = None;
            }
    end
    else begin
      Mdp_obs.Metrics.incr "whatif/incremental_hits";
      if not inv.Edit.inv_risk then Ok (unchanged_outcome base edit)
      else begin
        let profile_untouched =
          after.Edit.profile == base.inputs.Edit.profile
        in
        if inv.Edit.inv_plan && profile_untouched then begin
          Mdp_obs.Metrics.incr "whatif/invalidated_plan";
          let diff, worst = maintenance_delta base after in
          Ok
            {
              edit;
              classification = Delta;
              diff = Some diff;
              worst_after = Some worst;
            }
        end
        else
          match edit with
          | Edit.Set_sensitivity (field, _)
            when (not inv.Edit.inv_plan)
                 && after.Edit.policy == base.inputs.Edit.policy ->
            let diff, worst = sensitivity_delta base after field in
            Ok
              {
                edit;
                classification = Delta;
                diff = Some diff;
                worst_after = Some worst;
              }
          | _ ->
            if exact then Ok (exact_outcome base edit Replay)
            else
              Ok
                {
                  edit;
                  classification = Replay;
                  diff = None;
                  worst_after = None;
                }
      end
    end

(* ----- ranking sweep ----- *)

let improvement_score (d : Risk_diff.t) =
  let gain (c : Risk_diff.change) = Level.rank c.before - Level.rank c.after in
  List.fold_left
    (fun acc c -> acc + gain c)
    0
    (d.removed @ d.added @ d.changed)

type ranked = { outcome : outcome; score : int }

let sweep ?(jobs = 1) ?(exact = false) base edits =
  Mdp_obs.Metrics.span "phase/whatif" @@ fun () ->
  let arr = Array.of_list edits in
  let n = Array.length arr in
  let eval i =
    match eval_edit ~exact base arr.(i) with
    | Ok o -> o
    | Error msg ->
      (* An inapplicable candidate ranks as unknown. *)
      ignore msg;
      { edit = arr.(i); classification = Full_rerun; diff = None;
        worst_after = None }
  in
  let outcomes =
    (* The exact path re-analyses on the shared LTS (label mutation):
       sequential only. The delta path is read-only on the base. *)
    if exact || jobs <= 1 then List.init n eval
    else
      List.concat
        (Mdp_prelude.Parallel.map_chunks ~jobs n (fun lo hi ->
             List.init (hi - lo) (fun j -> eval (lo + j))))
  in
  let ranked =
    List.map
      (fun o ->
        {
          outcome = o;
          score =
            (match o.diff with Some d -> improvement_score d | None -> min_int);
        })
      outcomes
  in
  List.stable_sort (fun a b -> compare b.score a.score) ranked
