(** Transition labels of the privacy LTS (paper §II-B): an action kind, the
    fields acted on, the data schema they belong to, the performing actor,
    an optional purpose, and an optional privacy-risk measure "whose value
    is calculated and annotated during risk analysis". *)

open Mdp_dataflow

type kind = Collect | Create | Read | Disclose | Anon | Delete

type provenance =
  | From_flow of { service : string; order : int }
      (** Derived from a data-flow arrow. *)
  | Potential
      (** Derived from the access policy alone: an action an actor is
          permitted, but no service flow prescribes (e.g. §IV-A's
          Administrator read of the EHR). *)
  | Inferred
      (** A §III-B risk-transition: not permitted, but achievable by
          inference from pseudonymised data. *)

type risk =
  | Disclosure_risk of {
      impact : Level.t;
      likelihood : Level.t;
      level : Level.t;
    }  (** §III-A annotation. *)
  | Value_risk of { violations : int; total : int; max_risk : float }
      (** §III-B annotation: policy violations among [total] records. *)

type t = {
  kind : kind;
  fields : Field.t list;
  schema : string option;
  store : string option;  (** Datastore the action touches, when any. *)
  actor : string;  (** ["User"] for the subject's own part in [Collect]. *)
  purpose : string option;
  provenance : provenance;
  risk : risk option;
}

val make :
  ?schema:string ->
  ?store:string ->
  ?purpose:string ->
  ?risk:risk ->
  kind:kind ->
  fields:Field.t list ->
  actor:string ->
  provenance ->
  t

val with_risk : t -> risk -> t
val kind_of_flow : Flow.action_kind -> kind
val equal : t -> t -> bool

val hash : t -> int
(** Consistent with {!equal}; used by the LTS for duplicate-transition
    detection. *)

val pp_kind : Format.formatter -> kind -> unit
val pp_risk : Format.formatter -> risk -> unit
val pp : Format.formatter -> t -> unit
(** Full label, e.g.
    [read(Diagnosis:HealthRecord) by Administrator \[potential\] risk=Medium]. *)
