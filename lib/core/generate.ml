open Mdp_dataflow
open Mdp_prelude

type ordering = Strict | Data_driven

type options = {
  ordering : ordering;
  potential_reads : bool;
  granular_reads : bool;
  potential_deletes : bool;
  enforce_policy : bool;
  services : string list option;
  max_states : int;
  packed : bool;
  mem_budget : int option;
  spill_dir : string option;
}

let default_options =
  {
    ordering = Strict;
    potential_reads = true;
    granular_reads = false;
    potential_deletes = false;
    enforce_policy = true;
    services = None;
    max_states = 100_000;
    packed = true;
    mem_budget = None;
    spill_dir = None;
  }

let flow_only =
  { default_options with potential_reads = false; potential_deletes = false }

(* The schema label of an action touching [fields] of [store]: the schema
   containing them if unique, otherwise the store id itself. *)
let schema_label (store : Datastore.t) fields =
  let schemas =
    Listx.dedup
      (List.filter_map
         (fun f ->
           Option.map (fun (s : Schema.t) -> s.id) (Datastore.schema_of_field store f))
         fields)
  in
  match schemas with [ s ] -> Some s | [] | _ :: _ -> Some store.id

let field_indices u fields = List.map (Universe.field_index u) fields

(* Which flows are in scope, with their indices and strict-mode
   prerequisites, computed once per run. *)
type flow_info = {
  index : int;
  service : Service.t;
  flow : Flow.t;
  kind : Flow.action_kind;
  prereqs : int list; (* same-service flows with smaller order *)
}

let flows_in_scope u options =
  let in_scope (svc : Service.t) =
    match options.services with
    | None -> true
    | Some ids -> List.mem svc.id ids
  in
  let all = List.init (Universe.nflows u) (fun i -> (i, Universe.flow_at u i)) in
  List.filter_map
    (fun (index, ((svc : Service.t), (flow : Flow.t))) ->
      if not (in_scope svc) then None
      else
        let prereqs =
          List.filter_map
            (fun (j, ((svc' : Service.t), (flow' : Flow.t))) ->
              if svc'.id = svc.id && flow'.order < flow.order then Some j
              else None)
            all
        in
        Some
          {
            index;
            service = svc;
            flow;
            kind = Diagram.classify (Universe.diagram u) flow;
            prereqs;
          })
    all

(* Enforcement at the datastore interface: a [read] delivers only the
   fields the policy lets the actor read; a [create]/[anon] persists only
   the fields the policy lets the author write (for [anon], permission is
   checked on the anon variant actually written). An empty result disables
   the flow, as a fully denied operation would fail at run time. This is
   the only place generation consults [Policy.allows] — once per flow at
   compile time, never per state. *)
let effective_fields u options info =
  if not options.enforce_policy then info.flow.Flow.fields
  else
    let diagram = Universe.diagram u and policy = Universe.policy u in
    match info.kind with
    | Flow.Collect | Flow.Disclose -> info.flow.Flow.fields
    | Flow.Read ->
      let store = Flow.node_name info.flow.Flow.src
      and actor = Flow.node_name info.flow.Flow.dst in
      List.filter
        (fun f ->
          Mdp_policy.Policy.allows policy ~diagram ~actor
            Mdp_policy.Permission.Read ~store f)
        info.flow.Flow.fields
    | Flow.Create ->
      let store = Flow.node_name info.flow.Flow.dst
      and actor = Flow.node_name info.flow.Flow.src in
      List.filter
        (fun f ->
          Mdp_policy.Policy.allows policy ~diagram ~actor
            Mdp_policy.Permission.Write ~store f)
        info.flow.Flow.fields
    | Flow.Anon ->
      let store = Flow.node_name info.flow.Flow.dst
      and actor = Flow.node_name info.flow.Flow.src in
      List.filter
        (fun f ->
          Mdp_policy.Policy.allows policy ~diagram ~actor
            Mdp_policy.Permission.Write ~store (Field.anon_of f))
        info.flow.Flow.fields

(* A flow compiled to the data the successor function actually needs:
   the transition label, an enabling guard, and the state-variable deltas
   — all config-independent, so they are computed once per run instead of
   once per state (paper §II-B's extraction rules, evaluated ahead of
   time). Firing a compiled flow is then a handful of bitset unions. *)
type source_guard =
  | Always
  | Actor_has of int list (* privacy.has variable indices *)
  | Store_holds of int * int list (* store index, field indices *)

type compiled_flow = {
  cf_index : int;
  cf_prereqs : Bitset.t; (* flow indices that must have executed (Strict) *)
  cf_guard : source_guard;
  cf_action : Action.t;
  cf_has_vars : int list; (* privacy.has bits the action sets *)
  cf_store_write : (int * int list) option; (* store idx, field indices *)
  cf_could_vars : int list; (* privacy.could bits set on creation *)
}

let compile_flow u info eff_fields =
  let flow = { info.flow with Flow.fields = eff_fields } in
  let provenance =
    Action.From_flow { service = info.service.id; order = flow.order }
  in
  let vars_of actor fis =
    List.map (fun f -> Universe.var u ~actor ~field:f) fis
  in
  let could_vars_of ~store fis =
    List.concat_map
      (fun f ->
        List.map
          (fun a -> Universe.var u ~actor:a ~field:f)
          (Universe.readers u ~store ~field:f))
      fis
  in
  let action, has_vars, store_write, could_vars =
    match info.kind with
    | Flow.Collect ->
      let actor = Flow.node_name flow.dst in
      ( Action.make ~purpose:flow.purpose ~kind:Action.Collect
          ~fields:flow.fields ~actor provenance,
        vars_of (Universe.actor_index u actor) (field_indices u flow.fields),
        None,
        [] )
    | Flow.Disclose ->
      let src = Flow.node_name flow.src and dst = Flow.node_name flow.dst in
      ( Action.make ~purpose:flow.purpose ~kind:Action.Disclose
          ~fields:flow.fields ~actor:src provenance,
        vars_of (Universe.actor_index u dst) (field_indices u flow.fields),
        None,
        [] )
    | Flow.Create ->
      let actor = Flow.node_name flow.src in
      let si = Universe.store_index u (Flow.node_name flow.dst) in
      let fis = field_indices u flow.fields in
      let store = Universe.store_at u si in
      ( Action.make ?schema:(schema_label store flow.fields) ~store:store.id
          ~purpose:flow.purpose ~kind:Action.Create ~fields:flow.fields ~actor
          provenance,
        vars_of (Universe.actor_index u actor) fis,
        Some (si, fis),
        could_vars_of ~store:si fis )
    | Flow.Anon ->
      let actor = Flow.node_name flow.src in
      let si = Universe.store_index u (Flow.node_name flow.dst) in
      let anon_fields = List.map Field.anon_of flow.fields in
      let fis = field_indices u anon_fields in
      let store = Universe.store_at u si in
      ( Action.make ?schema:(schema_label store anon_fields) ~store:store.id
          ~purpose:flow.purpose ~kind:Action.Anon ~fields:flow.fields ~actor
          provenance,
        [],
        Some (si, fis),
        could_vars_of ~store:si fis )
    | Flow.Read ->
      let actor = Flow.node_name flow.dst in
      let si = Universe.store_index u (Flow.node_name flow.src) in
      let store = Universe.store_at u si in
      ( Action.make ?schema:(schema_label store flow.fields) ~store:store.id
          ~purpose:flow.purpose ~kind:Action.Read ~fields:flow.fields ~actor
          provenance,
        vars_of (Universe.actor_index u actor) (field_indices u flow.fields),
        None,
        [] )
  in
  (* Mirrors [source_holds] in the seed: the subject always holds their
     own raw data; creating a record is authorship (the Doctor creates a
     Diagnosis it never collected), whereas [anon] transforms data the
     actor must already hold. *)
  let guard =
    match flow.src with
    | Flow.User -> Always
    | Flow.Actor _ when info.kind = Flow.Create -> Always
    | Flow.Actor a ->
      Actor_has
        (vars_of (Universe.actor_index u a) (field_indices u flow.fields))
    | Flow.Store s ->
      Store_holds (Universe.store_index u s, field_indices u flow.fields)
  in
  {
    cf_index = info.index;
    cf_prereqs = Bitset.of_list (max 1 (Universe.nflows u)) info.prereqs;
    cf_guard = guard;
    cf_action = action;
    cf_has_vars = has_vars;
    cf_store_write = store_write;
    cf_could_vars = could_vars;
  }

let compile u options =
  List.filter_map
    (fun info ->
      match effective_fields u options info with
      | [] -> None
      | eff -> Some (compile_flow u info eff))
    (flows_in_scope u options)

let guard_holds (cfg : Config.t) = function
  | Always -> true
  | Actor_has vars -> List.for_all (Bitset.get cfg.privacy.has) vars
  | Store_holds (si, fis) -> List.for_all (Bitset.get cfg.stores.(si)) fis

let flow_enabled options (cfg : Config.t) cf =
  (not (Bitset.get cfg.executed cf.cf_index))
  && (match options.ordering with
     | Data_driven -> true
     | Strict -> Bitset.subset cf.cf_prereqs cfg.executed)
  && guard_holds cfg cf.cf_guard

(* Copy-on-write successor: only the bitsets the action changes are
   duplicated; everything else is shared with the parent config, which is
   what makes state-table probes cheap (physical equality fast paths). *)
let fire (cfg : Config.t) cf =
  let executed = Bitset.with_set cfg.executed cf.cf_index in
  let privacy =
    let has = Bitset.with_bits cfg.privacy.has cf.cf_has_vars in
    let could = Bitset.with_bits cfg.privacy.could cf.cf_could_vars in
    if has == cfg.privacy.has && could == cfg.privacy.could then cfg.privacy
    else { Privacy_state.has; could }
  in
  let stores =
    match cf.cf_store_write with
    | None -> cfg.stores
    | Some (si, fis) ->
      let contents = Bitset.with_bits cfg.stores.(si) fis in
      if contents == cfg.stores.(si) then cfg.stores
      else begin
        let stores = Array.copy cfg.stores in
        stores.(si) <- contents;
        stores
      end
  in
  { Config.privacy; stores; executed }

(* Memoised construction of potential-read actions: the action value and
   the privacy vars it sets depend only on (actor, store, field set) —
   never on the configuration — and the same few field sets recur across
   most states, so building the label (schema lookup, field names,
   record) once per distinct key removes the bulk of the emit cost.
   Sharing one [Action.t] across transitions is safe: actions are
   immutable and the analyses rewrite labels via [Plts.map_labels].

   The table is domain-local so the parallel explorer shares no mutable
   state; worker domains are short-lived and simply warm their own copy.
   [stamp] ties entries to one run — field indices mean different things
   in different universes. *)
let run_stamp = Atomic.make 1

let read_memo :
    (int ref * (int * int * int, Action.t * Bitset.t) Hashtbl.t) Domain.DLS.key
    =
  Domain.DLS.new_key (fun () -> (ref 0, Hashtbl.create 64))

(* [bits] is the fresh field set packed into one word (bit i = field i).
   The memo value pairs the action with the has-bitset mask it implies,
   ready for a word-wise union. *)
let read_action u ~stamp ~actor ~store bits =
  let cur, tbl = Domain.DLS.get read_memo in
  if !cur <> stamp then begin
    Hashtbl.reset tbl;
    cur := stamp
  end;
  let key = (actor, store, bits) in
  match Hashtbl.find_opt tbl key with
  | Some v -> v
  | None ->
    let nf = Universe.nfields u in
    let fis = ref [] in
    for f = nf - 1 downto 0 do
      if bits land (1 lsl f) <> 0 then fis := f :: !fis
    done;
    let st = Universe.store_at u store in
    let fields = List.map (Universe.field_at u) !fis in
    let action =
      Action.make ?schema:(schema_label st fields) ~store:st.id
        ~kind:Action.Read ~fields ~actor:(Universe.actor_name u actor)
        Action.Potential
    in
    let mask = Bitset.create (Universe.nvars u) in
    Bitset.set_word mask ~pos:(actor * nf) ~len:nf bits;
    let v = (action, mask) in
    Hashtbl.add tbl key v;
    v

(* Policy-derived reads: fields present in the store, readable by the
   actor, and not yet identified by it (reads that change no state are
   omitted to keep the LTS acyclic).

   Fast path, available whenever every field index fits one machine word
   (in practice always): the fresh set for an (actor, store) pair is a
   single masked AND — readable & contents & ~has — with no per-bit
   probing, and the [has] update is a word-wise union with the memoised
   mask. Emission order matches the generic path: actors outer, stores
   inner, fields in increasing order. *)
let potential_reads_packed u options ~stamp ~readable_words (cfg : Config.t) =
  let nf = Universe.nfields u in
  let ns = Universe.nstores u in
  let transitions = ref [] in
  let store_words =
    Array.init ns (fun s -> Bitset.extract cfg.stores.(s) ~pos:0 ~len:nf)
  in
  for a = 0 to Universe.nactors u - 1 do
    let has = Bitset.extract cfg.privacy.has ~pos:(a * nf) ~len:nf in
    let row : int array = readable_words.(a) in
    for s = 0 to ns - 1 do
      let fresh = row.(s) land store_words.(s) land lnot has in
      if fresh <> 0 then begin
        let emit bits =
          let action, mask = read_action u ~stamp ~actor:a ~store:s bits in
          let privacy =
            {
              Privacy_state.has = Bitset.union cfg.privacy.has mask;
              could = cfg.privacy.could;
            }
          in
          transitions := (action, { cfg with Config.privacy }) :: !transitions
        in
        if options.granular_reads then begin
          let bits = ref fresh in
          while !bits <> 0 do
            let lsb = !bits land - !bits in
            emit lsb;
            bits := !bits land lnot lsb
          done
        end
        else emit fresh
      end
    done
  done;
  !transitions

(* Generic fallback for models with more fields than a word holds;
   mirrors the seed implementation. *)
let potential_reads_generic u options (cfg : Config.t) =
  let transitions = ref [] in
  for a = 0 to Universe.nactors u - 1 do
    for s = 0 to Universe.nstores u - 1 do
      let fresh = ref [] in
      Bitset.iter_inter
        (fun f ->
          if not (Bitset.get cfg.privacy.has (Universe.var u ~actor:a ~field:f))
          then fresh := f :: !fresh)
        (Universe.readable_bits u ~actor:a ~store:s)
        cfg.stores.(s);
      let fresh = List.rev !fresh in
      let emit fis =
        let vars = List.map (fun f -> Universe.var u ~actor:a ~field:f) fis in
        let privacy =
          {
            Privacy_state.has = Bitset.with_bits cfg.privacy.has vars;
            could = cfg.privacy.could;
          }
        in
        let cfg' = { cfg with Config.privacy } in
        let store = Universe.store_at u s in
        let fields = List.map (Universe.field_at u) fis in
        let action =
          Action.make ?schema:(schema_label store fields) ~store:store.id
            ~kind:Action.Read ~fields ~actor:(Universe.actor_name u a)
            Action.Potential
        in
        transitions := (action, cfg') :: !transitions
      in
      if fresh <> [] then
        if options.granular_reads then List.iter (fun f -> emit [ f ]) fresh
        else emit fresh
    done
  done;
  !transitions

let potential_deletes u (cfg : Config.t) =
  let transitions = ref [] in
  for s = 0 to Universe.nstores u - 1 do
    if not (Bitset.is_empty cfg.stores.(s)) then
      List.iter
        (fun a ->
          let fields =
            List.map (Universe.field_at u) (Bitset.to_list cfg.stores.(s))
          in
          let stores = Array.copy cfg.stores in
          stores.(s) <- Bitset.create (Universe.nfields u);
          (* Recompute every [could] bit from the remaining contents: an
             actor could identify a field iff some store still holds it
             and the policy lets the actor read it there. *)
          let could = Bitset.create (Universe.nvars u) in
          Array.iteri
            (fun s' contents ->
              Bitset.iter
                (fun f ->
                  List.iter
                    (fun a' ->
                      Bitset.set could (Universe.var u ~actor:a' ~field:f))
                    (Universe.readers u ~store:s' ~field:f))
                contents)
            stores;
          let cfg' =
            {
              Config.privacy = { Privacy_state.has = cfg.privacy.has; could };
              stores;
              executed = cfg.executed;
            }
          in
          let store = Universe.store_at u s in
          let action =
            Action.make ?schema:(schema_label store fields) ~store:store.id
              ~kind:Action.Delete ~fields ~actor:(Universe.actor_name u a)
              Action.Potential
          in
          transitions := (action, cfg') :: !transitions)
        (Universe.deleters u ~store:s)
  done;
  !transitions

let fresh_stamp () = Atomic.fetch_and_add run_stamp 1

(* The per-(actor, store) readable field sets as single words, the fast
   potential-read representation; [None] when the model is too wide for
   one word. *)
let readable_rows u options =
  let nf = Universe.nfields u in
  if options.potential_reads && nf <= Bitset.bits_per_word then
    Some
      (Array.init (Universe.nactors u) (fun a ->
           Array.init (Universe.nstores u) (fun s ->
               Bitset.extract
                 (Universe.readable_bits u ~actor:a ~store:s)
                 ~pos:0 ~len:nf)))
  else None

(* One (actor, store) group of potential reads at [cfg], in the order
   the group's entries occupy the emitted row (fields descending under
   [granular_reads] — the full pass builds its list by prepending).
   [readable] is the pair's readable-field word. The incremental cone
   walk recomputes exactly the revoked pairs' groups through this. *)
let potential_reads_at u options ~stamp ~readable ~actor ~store (cfg : Config.t)
    =
  let nf = Universe.nfields u in
  let contents = Bitset.extract cfg.stores.(store) ~pos:0 ~len:nf in
  let has = Bitset.extract cfg.privacy.has ~pos:(actor * nf) ~len:nf in
  let fresh = readable land contents land lnot has in
  if fresh = 0 then []
  else begin
    let acc = ref [] in
    let emit bits =
      let action, mask = read_action u ~stamp ~actor ~store bits in
      let privacy =
        {
          Privacy_state.has = Bitset.union cfg.privacy.has mask;
          could = cfg.privacy.could;
        }
      in
      acc := (action, { cfg with Config.privacy }) :: !acc
    in
    if options.granular_reads then begin
      let bits = ref fresh in
      while !bits <> 0 do
        let lsb = !bits land - !bits in
        emit lsb;
        bits := !bits land lnot lsb
      done
    end
    else emit fresh;
    !acc
  end

(* The successor function [run] explores with, reusable by the
   incremental cone re-exploration (which must step fresh states with
   exactly the cold semantics). *)
let make_step u options ~stamp ~compiled ~readable_words =
  fun cfg ->
    let from_flows =
      List.filter_map
        (fun cf ->
          if flow_enabled options cfg cf then Some (cf.cf_action, fire cfg cf)
          else None)
        compiled
    in
    let reads =
      match readable_words with
      | Some readable_words ->
        potential_reads_packed u options ~stamp ~readable_words cfg
      | None ->
        if options.potential_reads then potential_reads_generic u options cfg
        else []
    in
    let deletes = if options.potential_deletes then potential_deletes u cfg else [] in
    from_flows @ reads @ deletes

(* Per-store reachability cones, accumulated as the LTS is built: the
   class of a transition is the index of the store its action touches
   (potential reads, deletes and store-directed flows all carry one).
   Store-less actions class as -1 and are not coned. *)
let store_classifier u (a : Action.t) =
  match a.Action.store with
  | Some s -> Universe.store_index u s
  | None -> -1

(* The packed engine stores only the configs' bitset payload words
   (layout and width are universe constants); [init] doubles as the
   shape template for decoding. Universes too wide for the packed
   record wordmap (63 words = ~2000 booleans per map) fall back to
   the boxed engine. *)
let config_packer options init =
  if options.packed && Config.nwords init <= 63 then
    Some
      {
        Mdp_lts.Lts.pk_words = Config.nwords init;
        pk_blit = (fun cfg dst off -> ignore (Config.blit_words cfg dst off : int));
        pk_decode = (fun src off -> Config.of_words ~template:init src off);
      }
  else None

let run ?(options = default_options) ?(jobs = 1) ?par_threshold ?cancel u =
  Mdp_obs.Metrics.span "generate/run" @@ fun () ->
  let compiled = compile u options in
  let stamp = fresh_stamp () in
  let readable_words = readable_rows u options in
  let step = make_step u options ~stamp ~compiled ~readable_words in
  let init = Config.initial u in
  let packing = config_packer options init in
  Plts.explore ~max_states:options.max_states ~jobs ?par_threshold ?cancel
    ?packing ?mem_budget:options.mem_budget ?spill_dir:options.spill_dir
    ~label_class:(store_classifier u) ~init ~step ()
