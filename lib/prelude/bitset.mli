(** Fixed-capacity mutable bitsets.

    A bitset is created with a fixed [length]; all operations on indices
    outside [0, length) raise [Invalid_argument]. Binary operations require
    operands of equal length. *)

type t

val create : int -> t
(** [create n] is a bitset of capacity [n] with all bits clear. *)

val length : t -> int
(** Capacity given at creation. *)

val copy : t -> t

val get : t -> int -> bool
val set : t -> int -> unit
val clear : t -> int -> unit
val assign : t -> int -> bool -> unit

val is_empty : t -> bool
val cardinal : t -> int
(** Number of set bits. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int

val union : t -> t -> t
(** Fresh bitset; operands unchanged. *)

val inter : t -> t -> t
val diff : t -> t -> t

val union_into : dst:t -> t -> unit
(** [union_into ~dst src] sets every bit of [src] in [dst]. *)

val subset : t -> t -> bool
(** [subset a b] is true iff every bit set in [a] is set in [b]. *)

val iter : (int -> unit) -> t -> unit
(** Iterate over set-bit indices in increasing order. Word-skipping: cost
    is proportional to the number of words plus the number of set bits,
    not to the capacity. *)

val iter_inter : (int -> unit) -> t -> t -> unit
(** [iter_inter f a b] calls [f] on every index set in both [a] and [b],
    in increasing order, without materialising the intersection. *)

val fold : (int -> 'a -> 'a) -> t -> 'a -> 'a
val to_list : t -> int list
val of_list : int -> int list -> t
val clear_all : t -> unit

val with_set : t -> int -> t
(** Copy-on-write [set]: a fresh bitset with the bit additionally set —
    or [t] itself (shared, no allocation) when the bit is already set. *)

val with_bits : t -> int list -> t
(** Copy-on-write [set] of several bits; [t] itself when they are all
    already set. *)

val bits_per_word : int
(** Number of payload bits per machine word (63). *)

val extract : t -> pos:int -> len:int -> int
(** [extract t ~pos ~len] is bits [pos .. pos+len-1] of [t] packed into
    an int, bit [pos] lowest. [len] must be at most [bits_per_word]; the
    range must lie within the capacity. *)

val set_word : t -> pos:int -> len:int -> int -> unit
(** [set_word t ~pos ~len w] sets every bit [pos + i] of [t] for which
    bit [i] of [w] is set ([i < len]); clears nothing. Inverse direction
    of {!extract} restricted to unions. *)

(** {1 Raw word access}

    The packed LTS engine stores states as bare payload words in a flat
    arena; these three functions are the boundary between bitsets and
    that representation. Words carry {!bits_per_word} payload bits each,
    lowest index first. *)

val word_count : t -> int
(** Number of payload words backing the bitset (at least 1). *)

val blit_words : t -> int array -> int -> int
(** [blit_words t dst off] copies the payload words into [dst] starting
    at [off]; returns the offset one past the last word written. *)

val of_words : length:int -> int array -> int -> t
(** [of_words ~length src off] rebuilds a bitset of capacity [length]
    from the words at [src.(off ..)] — the inverse of {!blit_words} for
    a bitset of that capacity. The words must respect the capacity (no
    bits at or above [length]); words written by {!blit_words} do. *)

val pp : Format.formatter -> t -> unit
(** Renders as e.g. [{1, 4, 7}]. *)
