let group_by ~key l =
  let rec insert k x = function
    | [] -> [ (k, [ x ]) ]
    | (k', xs) :: rest when k' = k -> (k', x :: xs) :: rest
    | pair :: rest -> pair :: insert k x rest
  in
  let grouped = List.fold_left (fun acc x -> insert (key x) x acc) [] l in
  List.map (fun (k, xs) -> (k, List.rev xs)) grouped

let dedup l =
  let rec go seen = function
    | [] -> []
    | x :: rest -> if List.mem x seen then go seen rest else x :: go (x :: seen) rest
  in
  go [] l

let cartesian xs ys = List.concat_map (fun x -> List.map (fun y -> (x, y)) ys) xs

let sum_by f l = List.fold_left (fun acc x -> acc + f x) 0 l
let sum_byf f l = List.fold_left (fun acc x -> acc +. f x) 0.0 l

let max_byf f l = List.fold_left (fun acc x -> Float.max acc (f x)) 0.0 l

let count p l = List.fold_left (fun acc x -> if p x then acc + 1 else acc) 0 l

let rec take n = function
  | [] -> []
  | _ when n <= 0 -> []
  | x :: rest -> x :: take (n - 1) rest

let rec drop n = function
  | [] -> []
  | l when n <= 0 -> l
  | _ :: rest -> drop (n - 1) rest

let index_of p l =
  let rec go i = function
    | [] -> None
    | x :: rest -> if p x then Some i else go (i + 1) rest
  in
  go 0 l

let find_duplicate f l =
  let rec go seen = function
    | [] -> None
    | x :: rest ->
      let k = f x in
      if List.mem k seen then Some k else go (k :: seen) rest
  in
  go [] l
