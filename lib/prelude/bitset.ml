type t = { len : int; words : int array }

let bits_per_word = 63

let nwords len = (len + bits_per_word - 1) / bits_per_word

let create len =
  if len < 0 then invalid_arg "Bitset.create";
  { len; words = Array.make (max 1 (nwords len)) 0 }

let length t = t.len

let copy t = { t with words = Array.copy t.words }

let check t i =
  if i < 0 || i >= t.len then invalid_arg "Bitset: index out of bounds"

let get t i =
  check t i;
  t.words.(i / bits_per_word) land (1 lsl (i mod bits_per_word)) <> 0

let set t i =
  check t i;
  let w = i / bits_per_word in
  t.words.(w) <- t.words.(w) lor (1 lsl (i mod bits_per_word))

let clear t i =
  check t i;
  let w = i / bits_per_word in
  t.words.(w) <- t.words.(w) land lnot (1 lsl (i mod bits_per_word))

let assign t i b = if b then set t i else clear t i

let is_empty t = Array.for_all (fun w -> w = 0) t.words

let popcount =
  (* Kernighan's loop: words are sparse in privacy states. *)
  let rec go acc w = if w = 0 then acc else go (acc + 1) (w land (w - 1)) in
  fun w -> go 0 w

let cardinal t = Array.fold_left (fun acc w -> acc + popcount w) 0 t.words

let same_len a b =
  if a.len <> b.len then invalid_arg "Bitset: length mismatch"

let equal a b =
  same_len a b;
  (* Copy-on-write consumers share word arrays heavily; the physical
     checks make equality O(1) on shared substructure. *)
  a == b || a.words == b.words || Array.for_all2 ( = ) a.words b.words

let compare a b =
  same_len a b;
  let rec go i =
    if i = Array.length a.words then 0
    else
      let c = Int.compare a.words.(i) b.words.(i) in
      if c <> 0 then c else go (i + 1)
  in
  go 0

let hash t =
  Array.fold_left (fun acc w -> (acc * 1000003) lxor w) t.len t.words

let map2 f a b =
  same_len a b;
  { len = a.len; words = Array.map2 f a.words b.words }

let union a b = map2 ( lor ) a b
let inter a b = map2 ( land ) a b
let diff a b = map2 (fun x y -> x land lnot y) a b

let union_into ~dst src =
  same_len dst src;
  Array.iteri (fun i w -> dst.words.(i) <- dst.words.(i) lor w) src.words

let subset a b =
  same_len a b;
  let rec go i =
    i = Array.length a.words
    || (a.words.(i) land lnot b.words.(i) = 0 && go (i + 1))
  in
  go 0

(* Index of the lowest set bit of a one-bit word. *)
let lsb_index lsb = popcount (lsb - 1)

let iter f t =
  (* Word-skipping: empty words cost one comparison, set bits are
     extracted lowest-first so indices come out in increasing order. *)
  for w = 0 to Array.length t.words - 1 do
    let bits = ref t.words.(w) in
    while !bits <> 0 do
      let lsb = !bits land - !bits in
      f ((w * bits_per_word) + lsb_index lsb);
      bits := !bits land lnot lsb
    done
  done

let iter_inter f a b =
  same_len a b;
  for w = 0 to Array.length a.words - 1 do
    let bits = ref (a.words.(w) land b.words.(w)) in
    while !bits <> 0 do
      let lsb = !bits land - !bits in
      f ((w * bits_per_word) + lsb_index lsb);
      bits := !bits land lnot lsb
    done
  done

let fold f t init =
  let acc = ref init in
  iter (fun i -> acc := f i !acc) t;
  !acc

let to_list t = List.rev (fold (fun i acc -> i :: acc) t [])

let of_list len l =
  let t = create len in
  List.iter (set t) l;
  t

let with_set t i =
  if get t i then t
  else begin
    let c = copy t in
    set c i;
    c
  end

let with_bits t l =
  if List.for_all (get t) l then t
  else begin
    let c = copy t in
    List.iter (set c) l;
    c
  end

let clear_all t = Array.fill t.words 0 (Array.length t.words) 0

let range_check t pos len =
  if len < 0 || len > bits_per_word || pos < 0 || pos + len > t.len then
    invalid_arg "Bitset: word range out of bounds"

let word_mask len = if len >= bits_per_word then lnot 0 else (1 lsl len) - 1

let extract t ~pos ~len =
  range_check t pos len;
  if len = 0 then 0
  else begin
    let w = pos / bits_per_word and off = pos mod bits_per_word in
    let lo = t.words.(w) lsr off in
    let v =
      if off + len <= bits_per_word then lo
      else lo lor (t.words.(w + 1) lsl (bits_per_word - off))
    in
    v land word_mask len
  end

let set_word t ~pos ~len bits =
  range_check t pos len;
  let bits = bits land word_mask len in
  if bits <> 0 then begin
    let w = pos / bits_per_word and off = pos mod bits_per_word in
    (* [lsl] drops bits shifted past the word width, which is exactly
       the high part carried into the next word below. *)
    t.words.(w) <- t.words.(w) lor (bits lsl off);
    if off + len > bits_per_word then
      t.words.(w + 1) <- t.words.(w + 1) lor (bits lsr (bits_per_word - off))
  end

let word_count t = Array.length t.words

let blit_words t dst off =
  let n = Array.length t.words in
  Array.blit t.words 0 dst off n;
  off + n

let of_words ~length src off =
  let n = max 1 (nwords length) in
  { len = length; words = Array.sub src off n }

let pp ppf t =
  Format.fprintf ppf "{%a}"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
       Format.pp_print_int)
    (to_list t)
