type t = { tbl : (int, int) Hashtbl.t; mutable next : int }

let create ?(size = 1024) () = { tbl = Hashtbl.create size; next = 0 }

let max_operand = 1 lsl 31

let code t a b =
  if a < 0 || b < 0 || a >= max_operand || b >= max_operand then
    invalid_arg "Intcode.code: operand out of range";
  let key = (a lsl 31) lor b in
  match Hashtbl.find_opt t.tbl key with
  | Some c -> c
  | None ->
    let c = t.next in
    Hashtbl.add t.tbl key c;
    t.next <- c + 1;
    c

let size t = t.next
