type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

let int i = Num (float_of_int i)

let escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let number_to_string f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.0f" f
  else Printf.sprintf "%g" f

let to_string ?(indent = true) t =
  let buf = Buffer.create 256 in
  let pad depth = if indent then Buffer.add_string buf (String.make (2 * depth) ' ') in
  let nl () = if indent then Buffer.add_char buf '\n' in
  let rec go depth = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (string_of_bool b)
    | Num f -> Buffer.add_string buf (number_to_string f)
    | Str s ->
      Buffer.add_char buf '"';
      Buffer.add_string buf (escape s);
      Buffer.add_char buf '"'
    | List [] -> Buffer.add_string buf "[]"
    | List items ->
      Buffer.add_char buf '[';
      nl ();
      List.iteri
        (fun i item ->
          if i > 0 then begin
            Buffer.add_char buf ',';
            nl ()
          end;
          pad (depth + 1);
          go (depth + 1) item)
        items;
      nl ();
      pad depth;
      Buffer.add_char buf ']'
    | Obj [] -> Buffer.add_string buf "{}"
    | Obj fields ->
      Buffer.add_char buf '{';
      nl ();
      List.iteri
        (fun i (k, v) ->
          if i > 0 then begin
            Buffer.add_char buf ',';
            nl ()
          end;
          pad (depth + 1);
          Buffer.add_char buf '"';
          Buffer.add_string buf (escape k);
          Buffer.add_string buf (if indent then "\": " else "\":");
          go (depth + 1) v)
        fields;
      nl ();
      pad depth;
      Buffer.add_char buf '}'
  in
  go 0 t;
  Buffer.contents buf

exception Parse of string

let of_string input =
  let n = String.length input in
  let pos = ref 0 in
  let fail msg = raise (Parse (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some input.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %C" c)
  in
  let literal word value =
    if !pos + String.length word <= n && String.sub input !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      value
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
        advance ();
        match peek () with
        | Some 'n' -> Buffer.add_char buf '\n'; advance (); go ()
        | Some 't' -> Buffer.add_char buf '\t'; advance (); go ()
        | Some 'r' -> Buffer.add_char buf '\r'; advance (); go ()
        | Some '"' -> Buffer.add_char buf '"'; advance (); go ()
        | Some '\\' -> Buffer.add_char buf '\\'; advance (); go ()
        | Some '/' -> Buffer.add_char buf '/'; advance (); go ()
        | Some 'u' ->
          (* keep \uXXXX verbatim; full unicode is out of scope *)
          Buffer.add_string buf "\\u";
          advance ();
          for _ = 1 to 4 do
            (match peek () with
            | Some c -> Buffer.add_char buf c
            | None -> fail "truncated \\u escape");
            advance ()
          done;
          go ()
        | _ -> fail "bad escape")
      | Some c ->
        Buffer.add_char buf c;
        advance ();
        go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let num_char c =
      (c >= '0' && c <= '9') || c = '-' || c = '+' || c = '.' || c = 'e' || c = 'E'
    in
    while (match peek () with Some c when num_char c -> true | _ -> false) do
      advance ()
    done;
    match float_of_string_opt (String.sub input start (!pos - start)) with
    | Some f -> f
    | None -> fail "bad number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let rec fields acc =
          skip_ws ();
          let key = parse_string () in
          skip_ws ();
          expect ':';
          let value = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            fields ((key, value) :: acc)
          | Some '}' ->
            advance ();
            List.rev ((key, value) :: acc)
          | _ -> fail "expected ',' or '}'"
        in
        Obj (fields [])
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        List []
      end
      else begin
        let rec items acc =
          let value = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            items (value :: acc)
          | Some ']' ->
            advance ();
            List.rev (value :: acc)
          | _ -> fail "expected ',' or ']'"
        in
        List (items [])
      end
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> Num (parse_number ())
  in
  match parse_value () with
  | value ->
    skip_ws ();
    if !pos <> n then Error (Printf.sprintf "trailing input at offset %d" !pos)
    else Ok value
  | exception Parse msg -> Error msg

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | Null | Bool _ | Num _ | Str _ | List _ -> None

let to_int_opt = function Num n -> Some (int_of_float n) | _ -> None
let to_str_opt = function Str s -> Some s | _ -> None
let to_list_opt = function List l -> Some l | _ -> None

let pp ppf t = Format.pp_print_string ppf (to_string t)
