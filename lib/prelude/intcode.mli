(** Dense interning of int pairs.

    Maps pairs of small non-negative ints to consecutive codes in
    first-seen order. The columnar anonymisation engine folds a row's
    per-column dictionary codes through {!code} to key equivalence
    classes by a single int instead of a concatenated string — one hash
    probe per (row, column) and a dense class index for free, with
    first-seen code order matching the first-appearance class order of
    the string-keyed naive path. *)

type t

val create : ?size:int -> unit -> t
(** [size] is the initial hash-table sizing hint. *)

val code : t -> int -> int -> int
(** [code t a b] is the dense code of the pair [(a, b)]: a fresh
    consecutive int the first time the pair is seen, the same int
    afterwards. Both operands must be in [0, 2^31) so the pair packs
    into one immediate int key.
    @raise Invalid_argument on an out-of-range operand. *)

val size : t -> int
(** Number of distinct pairs seen so far (= the next fresh code). *)
