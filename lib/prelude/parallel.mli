(** Contiguous-chunk fan-out over OCaml 5 domains.

    All functions split [0, n) into at most [jobs] contiguous
    half-open ranges [lo, hi) with the standard balanced bound
    [k * n / jobs]. The calling domain always processes the first
    chunk itself; only the remaining chunks get a [Domain.spawn].
    With [jobs <= 1] (or [n <= 1]) nothing is spawned at all, so
    callers can fall back to the sequential path by clamping [jobs]
    without paying any domain overhead.

    The chunk function must be safe to run concurrently: it may write
    to disjoint slices of shared arrays, but must not touch shared
    mutable structures (hash tables, growable buffers, the calling
    LTS, ...). *)

val chunks : jobs:int -> int -> (int * int) list
(** The [(lo, hi)] ranges that {!map_chunks}/{!iter_chunks} would use:
    at most [jobs] non-empty contiguous chunks covering [0, n). *)

val map_chunks : jobs:int -> int -> (int -> int -> 'a) -> 'a list
(** [map_chunks ~jobs n f] runs [f lo hi] over each chunk — first
    chunk on the calling domain, the rest on spawned domains — and
    returns the results in chunk order (deterministic for any
    [jobs]). Empty list when [n <= 0]. *)

val iter_chunks : jobs:int -> int -> (int -> int -> unit) -> unit
(** {!map_chunks} for side-effecting chunk bodies. *)
