(** List helpers missing from the standard library. *)

val group_by : key:('a -> 'b) -> 'a list -> ('b * 'a list) list
(** Groups preserve first-appearance order of keys and element order within
    a group. Keys are compared with polymorphic equality. *)

val dedup : 'a list -> 'a list
(** Keep the first occurrence of each element (polymorphic equality),
    preserving order. *)

val cartesian : 'a list -> 'b list -> ('a * 'b) list
val sum_by : ('a -> int) -> 'a list -> int
val sum_byf : ('a -> float) -> 'a list -> float
val max_byf : ('a -> float) -> 'a list -> float
(** Maximum of [f] over the list; 0.0 on the empty list. *)

val count : ('a -> bool) -> 'a list -> int
val take : int -> 'a list -> 'a list
val drop : int -> 'a list -> 'a list
(** The complement of {!take}: everything after the first [n] elements. *)

val index_of : ('a -> bool) -> 'a list -> int option
val find_duplicate : ('a -> 'b) -> 'a list -> 'b option
(** First key (by [f]) appearing more than once, if any. *)
