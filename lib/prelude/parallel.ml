(* Contiguous-chunk fan-out over OCaml 5 domains. The calling domain
   always works the first chunk itself, so [jobs = 1] (or a single
   chunk) never spawns: the sequential path stays allocation- and
   domain-free, which is what makes a cheap small-input fallback
   possible at the call sites. *)

let chunks ~jobs n =
  let jobs = if n <= 0 then 1 else max 1 (min jobs n) in
  List.init jobs (fun k -> (k * n / jobs, (k + 1) * n / jobs))

let map_chunks ~jobs n f =
  if n <= 0 then []
  else
    let jobs = max 1 (min jobs n) in
    if jobs = 1 then [ f 0 n ]
    else begin
      let bound k = k * n / jobs in
      let workers =
        List.init (jobs - 1) (fun k ->
            let lo = bound (k + 1) and hi = bound (k + 2) in
            Domain.spawn (fun () -> f lo hi))
      in
      let first = f 0 (bound 1) in
      first :: List.map Domain.join workers
    end

let iter_chunks ~jobs n f =
  ignore (map_chunks ~jobs n (fun lo hi -> f lo hi) : unit list)
