(** Minimal JSON values and serialisation.

    Reports are exported as machine-readable JSON so downstream tooling
    (dashboards, CI gates) can consume analysis results; no external JSON
    dependency is available in this environment, so writing (and a small
    parser for round-trip tests) live here. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val int : int -> t
val to_string : ?indent:bool -> t -> string
(** [indent] (default true) pretty-prints with two-space indentation. *)

val of_string : string -> (t, string) result
(** Standard JSON subset: no unicode escapes beyond [\uXXXX] pass-through
    (kept verbatim), numbers as OCaml floats. *)

val member : string -> t -> t option
(** Object field lookup; [None] on non-objects. *)

val to_int_opt : t -> int option
(** [Num] truncated to int; [None] otherwise. *)

val to_str_opt : t -> string option
val to_list_opt : t -> t list option

val pp : Format.formatter -> t -> unit
