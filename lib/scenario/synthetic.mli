(** Synthetic model and dataset generators for scaling benchmarks and
    property tests. Everything is deterministic in the seed. *)

type spec = {
  seed : int;
  nactors : int;
  nfields : int;
  nstores : int;
  nservices : int;
  flows_per_service : int;
}

val spec_of_string : string -> (spec, string) result option
(** Parse a ["synthetic:NACTORS-NFIELDS-FLOWS[@SEED]"] (or
    ["synthetic-..."]) model name: [None] when the string does not
    carry the prefix at all (it names a file), [Some (Error _)] when
    it does but the body is malformed. Seed defaults to 42, with two
    stores and two services — the bench suite's conventions. One
    parser shared by the CLI and the serve daemon, so a model string
    resolves identically everywhere. *)

val model : spec -> Mdp_dataflow.Diagram.t * Mdp_policy.Policy.t
(** A random but well-formed diagram: each service starts with a collect,
    interleaves creates and reads over random stores and field subsets,
    and the policy grants each actor read/write on the stores its flows
    touch, plus one gratuitous read grant per store to a random actor
    (so potential-read transitions exist) and one store-level Delete
    grant per store to a random actor (maintenance exposure, the
    incremental what-if sweep's fast-path candidates). Field counts are
    clamped so every flow carries at least one field. *)

val profile : spec -> Mdp_dataflow.Diagram.t -> Mdp_core.User_profile.t
(** Agrees to the first half of the services; a random third of the
    fields get sensitivity 0.9, another third 0.4. *)

val dataset : seed:int -> rows:int -> quasi:int -> Mdp_anon.Dataset.t
(** Numeric microdata: [quasi] quasi-identifier columns uniform in
    [0, 100), one sensitive column correlated with the first quasi
    column. *)

val scheme_for : quasi:int -> Mdp_anon.Kanon.scheme
(** Width-10/25 numeric hierarchies for {!dataset}'s quasi columns. *)
