open Mdp_dataflow
module Prng = Mdp_prelude.Prng
module Acl = Mdp_policy.Acl
module Permission = Mdp_policy.Permission
module A = Mdp_anon

type spec = {
  seed : int;
  nactors : int;
  nfields : int;
  nstores : int;
  nservices : int;
  flows_per_service : int;
}

(* "synthetic:NA-NF-FPS[@SEED]" (also accepted with a "-" separator)
   names a generated model rather than a file; shared by the CLI and
   the serve daemon so both resolve exactly the same model from the
   same string. Defaults match bench/main.ml: seed 42, two stores,
   two services. *)
let spec_of_string path =
  let prefixed p =
    if
      String.length path > String.length p
      && String.sub path 0 (String.length p) = p
    then
      Some
        (String.sub path (String.length p) (String.length path - String.length p))
    else None
  in
  match
    match prefixed "synthetic:" with
    | Some b -> Some b
    | None -> prefixed "synthetic-"
  with
  | None -> None
  | Some body -> (
    let spec () =
      let body, seed =
        match String.index_opt body '@' with
        | None -> (body, 42)
        | Some i ->
          ( String.sub body 0 i,
            int_of_string (String.sub body (i + 1) (String.length body - i - 1))
          )
      in
      match String.split_on_char '-' body |> List.map int_of_string with
      | [ na; nf; fps ] ->
        {
          seed;
          nactors = na;
          nfields = nf;
          nstores = 2;
          nservices = 2;
          flows_per_service = fps;
        }
      | _ -> failwith "synthetic"
    in
    match spec () with
    | spec -> Some (Ok spec)
    | exception _ ->
      Some
        (Error (path ^ ": expected synthetic:NACTORS-NFIELDS-FLOWS[@SEED]")))

let actor_name i = Printf.sprintf "Actor%d" i
let store_name i = Printf.sprintf "Store%d" i
let field_at i = Field.make (Printf.sprintf "Field%d" i)

let subset rng fields =
  let chosen = List.filter (fun _ -> Prng.bool rng) fields in
  match chosen with [] -> [ List.nth fields (Prng.int rng (List.length fields)) ] | l -> l

let model spec =
  if spec.nactors < 1 || spec.nfields < 1 || spec.nstores < 1 then
    invalid_arg "Synthetic.model: need at least one actor, field and store";
  let rng = Prng.create ~seed:spec.seed in
  let fields = List.init spec.nfields field_at in
  let actors = List.init spec.nactors (fun i -> Actor.make (actor_name i)) in
  let datastores =
    List.init spec.nstores (fun i ->
        Datastore.make ~id:(store_name i)
          ~schemas:[ Schema.make ~id:(Printf.sprintf "Schema%d" i) ~fields ]
          ())
  in
  (* Track which (actor, store, perm) grants the services require. *)
  let grants = Hashtbl.create 16 in
  let need actor store perm = Hashtbl.replace grants (actor, store, perm) () in
  let services =
    List.init spec.nservices (fun s ->
        let svc_id = Printf.sprintf "Service%d" s in
        let order = ref 0 in
        let next () = incr order; !order in
        let rand_actor () = actor_name (Prng.int rng spec.nactors) in
        let rand_store () = store_name (Prng.int rng spec.nstores) in
        let first_actor = rand_actor () in
        let opening =
          Flow.make ~order:(next ()) ~src:Flow.User
            ~dst:(Flow.Actor first_actor) ~fields:(subset rng fields)
            ~purpose:svc_id
        in
        (* Keep every flow executable in strict order: creates are
           authorship (always enabled); reads draw their fields from what
           an earlier flow of this service created in that store. *)
        let written : (string, Field.t list) Hashtbl.t = Hashtbl.create 4 in
        let body =
          List.init (max 0 (spec.flows_per_service - 1)) (fun _ ->
              let actor = rand_actor () in
              let readable_stores =
                Hashtbl.fold (fun store fs acc -> (store, fs) :: acc) written []
              in
              match readable_stores with
              | (store, fs) :: _ when Prng.bool rng ->
                need actor store Permission.Read;
                Flow.make ~order:(next ()) ~src:(Flow.Store store)
                  ~dst:(Flow.Actor actor) ~fields:(subset rng fs)
                  ~purpose:svc_id
              | _ ->
                let store = rand_store () in
                let fs = subset rng fields in
                need actor store Permission.Write;
                Hashtbl.replace written store
                  (Mdp_prelude.Listx.dedup
                     (fs
                     @ Option.value (Hashtbl.find_opt written store) ~default:[]));
                Flow.make ~order:(next ()) ~src:(Flow.Actor actor)
                  ~dst:(Flow.Store store) ~fields:fs ~purpose:svc_id)
        in
        Service.make ~id:svc_id ~flows:(opening :: body))
  in
  let required_entries =
    Hashtbl.fold
      (fun (actor, store, perm) () acc ->
        Acl.allow (Acl.Actor_subject actor) ~store [ perm ] :: acc)
      grants []
  in
  (* Gratuitous read grants create §IV-A-style potential-read risks. *)
  let gratuitous =
    List.init spec.nstores (fun i ->
        Acl.allow
          (Acl.Actor_subject (actor_name (Prng.int rng spec.nactors)))
          ~store:(store_name i) [ Permission.Read ])
  in
  (* Maintenance Delete grants (§III-A): one random deleter per store,
     drawn after every other draw so the diagram and the grants above
     keep their shape across seeds. With potential deletes off these
     never touch the LTS — only the maintenance-exposure term — which
     makes them the incremental sweep's interactive candidates. *)
  let maintenance =
    List.init spec.nstores (fun i ->
        Acl.allow
          (Acl.Actor_subject (actor_name (Prng.int rng spec.nactors)))
          ~store:(store_name i) [ Permission.Delete ])
  in
  let diagram = Diagram.make_exn ~actors ~datastores ~services in
  (diagram, Mdp_policy.Policy.make (required_entries @ gratuitous @ maintenance))

let profile spec diagram =
  let rng = Prng.create ~seed:(spec.seed + 1) in
  let agreed =
    List.filteri
      (fun i _ -> i < max 1 (spec.nservices / 2))
      (List.map (fun (s : Service.t) -> s.id) diagram.Diagram.services)
  in
  let sensitivities =
    List.filter_map
      (fun f ->
        match Prng.int rng 3 with
        | 0 -> Some (f, 0.9)
        | 1 -> Some (f, 0.4)
        | _ -> None)
      (Diagram.all_fields diagram)
  in
  Mdp_core.User_profile.make ~sensitivities ~agreed_services:agreed ()

let dataset ~seed ~rows ~quasi =
  if quasi < 1 then invalid_arg "Synthetic.dataset: need at least one quasi";
  let rng = Prng.create ~seed in
  let attrs =
    List.init quasi (fun i ->
        A.Attribute.make ~name:(Printf.sprintf "Q%d" i) ~kind:A.Attribute.Quasi)
    @ [ A.Attribute.make ~name:"S" ~kind:A.Attribute.Sensitive ]
  in
  (* Array-direct so a million-row bench input never materialises row
     lists; Dataset.init calls f in row-major order, so the per-row
     draw sequence (quasi columns ascending, then the sensitive draw
     conditioned on the row's Q0) stays deterministic in the seed. *)
  let q0 = ref 0 in
  A.Dataset.init ~attrs ~nrows:rows ~f:(fun ~row:_ ~col ->
      if col < quasi then begin
        let v = Prng.int rng 100 in
        if col = 0 then q0 := v;
        A.Value.Int v
      end
      else
        A.Value.Float
          (Float.round
             (Float.max 0.0
                (Prng.gaussian rng
                   ~mean:(float_of_int (2 * !q0))
                   ~stddev:10.0))))

let scheme_for ~quasi =
  List.init quasi (fun i ->
      (Printf.sprintf "Q%d" i, A.Hierarchy.numeric ~widths:[ 10.0; 25.0 ] ()))
