(** Monotonic time source.

    All timing in the project goes through this module.  The clock is
    [CLOCK_MONOTONIC]: readings only ever move forward, independent of
    NTP adjustments, so interval arithmetic is always valid. *)

val now_ns : unit -> int
(** Current monotonic reading in nanoseconds.  Only differences between
    two readings are meaningful; the epoch is unspecified (boot time on
    Linux). *)

val ns_to_s : int -> float
(** Convert a nanosecond interval to seconds. *)

val ns_to_ms : int -> float
(** Convert a nanosecond interval to milliseconds. *)

val elapsed_s : int -> float
(** [elapsed_s t0] is the seconds elapsed since the reading [t0]. *)

val time : (unit -> 'a) -> 'a * float
(** [time f] runs [f ()] and returns its result together with the
    elapsed wall time in seconds, measured monotonically. *)
