type reason = Client | Deadline

type t = { flag : bool Atomic.t; deadline_ns : int }

exception Cancelled of reason

let create ?(deadline_ns = max_int) () =
  { flag = Atomic.make false; deadline_ns }

let with_budget_ms ms =
  { flag = Atomic.make false; deadline_ns = Clock.now_ns () + (ms * 1_000_000) }

let cancel t = Atomic.set t.flag true

let reason t =
  if Atomic.get t.flag then Some Client
  else if t.deadline_ns <> max_int && Clock.now_ns () >= t.deadline_ns then
    Some Deadline
  else None

let cancelled t = reason t <> None

let check t =
  match reason t with None -> () | Some r -> raise (Cancelled r)
