(* Sharded metrics: each domain records into its own shard (reached
   through Domain.DLS, so no locking on the hot path); shards register
   themselves once, under a mutex, when a domain first records.  A
   snapshot walks the registry and merges deterministically. *)

let enabled_flag =
  Atomic.make
    (match Sys.getenv_opt "MDPRIV_METRICS" with
    | Some ("" | "0" | "false") | None -> false
    | Some _ -> true)

let enabled () = Atomic.get enabled_flag
let set_enabled b = Atomic.set enabled_flag b

(* Histograms bucket by powers of two: bucket [i] counts samples whose
   value fits in [i] bits (bucket 0 holds value 0, bucket 1 holds 1,
   bucket 2 holds 2-3, ...).  63 buckets cover the full immediate-int
   range, so nanosecond latencies and row counts share one shape. *)
let nbuckets = 63

let bucket_of v =
  if v <= 0 then 0
  else
    let rec bits n acc = if n = 0 then acc else bits (n lsr 1) (acc + 1) in
    bits v 0

let bucket_upper i = if i = 0 then 0 else (1 lsl i) - 1

type hist = {
  mutable count : int;
  mutable sum : int;
  mutable min_v : int;
  mutable max_v : int;
  buckets : int array;
}

type raw_span = { name : string; start_ns : int; dur_ns : int; domain : int }

type shard = {
  counters : (string, int ref) Hashtbl.t;
  hists : (string, hist) Hashtbl.t;
  mutable rev_spans : raw_span list;
}

let registry_mu = Mutex.create ()
let registry : shard list ref = ref []

let shard_key =
  Domain.DLS.new_key (fun () ->
      let s =
        {
          counters = Hashtbl.create 32;
          hists = Hashtbl.create 16;
          rev_spans = [];
        }
      in
      Mutex.lock registry_mu;
      registry := s :: !registry;
      Mutex.unlock registry_mu;
      s)

let shard () = Domain.DLS.get shard_key

let add name n =
  if Atomic.get enabled_flag then begin
    let s = shard () in
    match Hashtbl.find_opt s.counters name with
    | Some r -> r := !r + n
    | None -> Hashtbl.add s.counters name (ref n)
  end

let incr name = add name 1

let observe name v =
  if Atomic.get enabled_flag then begin
    let s = shard () in
    let h =
      match Hashtbl.find_opt s.hists name with
      | Some h -> h
      | None ->
          let h =
            {
              count = 0;
              sum = 0;
              min_v = max_int;
              max_v = min_int;
              buckets = Array.make nbuckets 0;
            }
          in
          Hashtbl.add s.hists name h;
          h
    in
    h.count <- h.count + 1;
    h.sum <- h.sum + v;
    if v < h.min_v then h.min_v <- v;
    if v > h.max_v then h.max_v <- v;
    let b = bucket_of v in
    let b = if b >= nbuckets then nbuckets - 1 else b in
    h.buckets.(b) <- h.buckets.(b) + 1
  end

let record_span name start_ns dur_ns =
  let s = shard () in
  s.rev_spans <-
    { name; start_ns; dur_ns; domain = (Domain.self () :> int) } :: s.rev_spans;
  observe name dur_ns

let span name f =
  if not (Atomic.get enabled_flag) then f ()
  else begin
    let t0 = Clock.now_ns () in
    Fun.protect ~finally:(fun () -> record_span name t0 (Clock.now_ns () - t0)) f
  end

(* ------------------------------------------------------------------ *)
(* Gauges                                                             *)

(* Last-write-wins point-in-time values (process RSS, arena bytes).
   Unlike counters these are set explicitly at sampling points — never
   from hot paths and never implicitly inside [snapshot], which keeps
   the determinism guarantee: two runs that sample at the same program
   points produce the same snapshot, and runs that never call
   [sample_memory] carry no machine-dependent values at all. *)
let gauges_mu = Mutex.create ()
let gauges : (string, int) Hashtbl.t = Hashtbl.create 16

let set_gauge name v =
  if Atomic.get enabled_flag then begin
    Mutex.lock gauges_mu;
    Hashtbl.replace gauges name v;
    Mutex.unlock gauges_mu
  end

let rss_bytes () =
  (* /proc/self/statm: size resident shared ... in pages. *)
  match
    In_channel.with_open_text "/proc/self/statm" In_channel.input_line
  with
  | Some line -> (
    match String.split_on_char ' ' line with
    | _ :: resident :: _ ->
      (try int_of_string resident * 4096 with _ -> 0)
    | _ -> 0)
  | None -> 0
  | exception _ -> 0

let sample_memory () =
  if Atomic.get enabled_flag then begin
    let st = Gc.quick_stat () in
    set_gauge "mem/rss_bytes" (rss_bytes ());
    set_gauge "mem/heap_bytes" (st.Gc.heap_words * 8);
    set_gauge "mem/top_heap_bytes" (st.Gc.top_heap_words * 8)
  end

let reset () =
  Mutex.lock registry_mu;
  List.iter
    (fun s ->
      Hashtbl.reset s.counters;
      Hashtbl.reset s.hists;
      s.rev_spans <- [])
    !registry;
  Mutex.unlock registry_mu;
  Mutex.lock gauges_mu;
  Hashtbl.reset gauges;
  Mutex.unlock gauges_mu

(* ------------------------------------------------------------------ *)
(* Snapshots                                                          *)

type histogram = {
  h_count : int;
  h_sum : int;
  h_min : int;
  h_max : int;
  h_buckets : (int * int) list;
}

type span_record = {
  sp_name : string;
  sp_start_ns : int;
  sp_dur_ns : int;
  sp_domain : int;
}

type snapshot = {
  counters : (string * int) list;
  histograms : (string * histogram) list;
  gauges : (string * int) list;
  spans : span_record list;
}

let snapshot () =
  Mutex.lock registry_mu;
  let shards = !registry in
  let counters = Hashtbl.create 32 in
  let hists : (string, hist) Hashtbl.t = Hashtbl.create 16 in
  let spans = ref [] in
  List.iter
    (fun (s : shard) ->
      Hashtbl.iter
        (fun name r ->
          match Hashtbl.find_opt counters name with
          | Some acc -> acc := !acc + !r
          | None -> Hashtbl.add counters name (ref !r))
        s.counters;
      Hashtbl.iter
        (fun name h ->
          match Hashtbl.find_opt hists name with
          | Some acc ->
              acc.count <- acc.count + h.count;
              acc.sum <- acc.sum + h.sum;
              if h.min_v < acc.min_v then acc.min_v <- h.min_v;
              if h.max_v > acc.max_v then acc.max_v <- h.max_v;
              Array.iteri (fun i n -> acc.buckets.(i) <- acc.buckets.(i) + n)
                h.buckets
          | None ->
              Hashtbl.add hists name
                {
                  count = h.count;
                  sum = h.sum;
                  min_v = h.min_v;
                  max_v = h.max_v;
                  buckets = Array.copy h.buckets;
                })
        s.hists;
      spans := List.rev_append s.rev_spans !spans)
    shards;
  Mutex.unlock registry_mu;
  let counters =
    Hashtbl.fold (fun name r acc -> (name, !r) :: acc) counters []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  let histograms =
    Hashtbl.fold
      (fun name h acc ->
        let buckets = ref [] in
        for i = nbuckets - 1 downto 0 do
          if h.buckets.(i) > 0 then
            buckets := (bucket_upper i, h.buckets.(i)) :: !buckets
        done;
        ( name,
          {
            h_count = h.count;
            h_sum = h.sum;
            h_min = (if h.count = 0 then 0 else h.min_v);
            h_max = (if h.count = 0 then 0 else h.max_v);
            h_buckets = !buckets;
          } )
        :: acc)
      hists []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  let spans =
    !spans
    |> List.map (fun r ->
           {
             sp_name = r.name;
             sp_start_ns = r.start_ns;
             sp_dur_ns = r.dur_ns;
             sp_domain = r.domain;
           })
    |> List.sort (fun a b ->
           match compare a.sp_start_ns b.sp_start_ns with
           | 0 -> String.compare a.sp_name b.sp_name
           | c -> c)
  in
  let gauges_l =
    Mutex.lock gauges_mu;
    let l = Hashtbl.fold (fun name v acc -> (name, v) :: acc) gauges [] in
    Mutex.unlock gauges_mu;
    List.sort (fun (a, _) (b, _) -> String.compare a b) l
  in
  { counters; histograms; gauges = gauges_l; spans }

(* ------------------------------------------------------------------ *)
(* Rendering                                                          *)

let pp_summary ppf snap =
  let open Format in
  if snap.counters <> [] then begin
    fprintf ppf "counters:@.";
    List.iter
      (fun (name, v) -> fprintf ppf "  %-40s %d@." name v)
      snap.counters
  end;
  if snap.gauges <> [] then begin
    fprintf ppf "gauges:@.";
    List.iter (fun (name, v) -> fprintf ppf "  %-40s %d@." name v) snap.gauges
  end;
  if snap.histograms <> [] then begin
    fprintf ppf "histograms:@.";
    List.iter
      (fun (name, h) ->
        let mean = if h.h_count = 0 then 0. else float h.h_sum /. float h.h_count in
        fprintf ppf "  %-40s n=%d sum=%d min=%d mean=%.1f max=%d@." name
          h.h_count h.h_sum h.h_min mean h.h_max)
      snap.histograms
  end;
  let by_name = Hashtbl.create 16 in
  let order = ref [] in
  List.iter
    (fun sp ->
      match Hashtbl.find_opt by_name sp.sp_name with
      | Some (n, tot) -> Hashtbl.replace by_name sp.sp_name (n + 1, tot + sp.sp_dur_ns)
      | None ->
          Hashtbl.add by_name sp.sp_name (1, sp.sp_dur_ns);
          order := sp.sp_name :: !order)
    snap.spans;
  if !order <> [] then begin
    fprintf ppf "spans:@.";
    List.iter
      (fun name ->
        let n, tot = Hashtbl.find by_name name in
        fprintf ppf "  %-40s n=%d total=%.3fs@." name n (Clock.ns_to_s tot))
      (List.rev !order)
  end

let sanitize name =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> c
      | _ -> '_')
    name

let to_prometheus snap =
  let buf = Buffer.create 1024 in
  List.iter
    (fun (name, v) ->
      let m = "mdpriv_" ^ sanitize name ^ "_total" in
      Buffer.add_string buf (Printf.sprintf "# TYPE %s counter\n%s %d\n" m m v))
    snap.counters;
  List.iter
    (fun (name, v) ->
      let m = "mdpriv_" ^ sanitize name in
      Buffer.add_string buf (Printf.sprintf "# TYPE %s gauge\n%s %d\n" m m v))
    snap.gauges;
  List.iter
    (fun (name, h) ->
      let m = "mdpriv_" ^ sanitize name in
      Buffer.add_string buf (Printf.sprintf "# TYPE %s histogram\n" m);
      let cum = ref 0 in
      List.iter
        (fun (ub, n) ->
          cum := !cum + n;
          Buffer.add_string buf
            (Printf.sprintf "%s_bucket{le=\"%d\"} %d\n" m ub !cum))
        h.h_buckets;
      Buffer.add_string buf
        (Printf.sprintf "%s_bucket{le=\"+Inf\"} %d\n" m h.h_count);
      Buffer.add_string buf (Printf.sprintf "%s_sum %d\n" m h.h_sum);
      Buffer.add_string buf (Printf.sprintf "%s_count %d\n" m h.h_count))
    snap.histograms;
  Buffer.contents buf

let spans_to_jsonl snap =
  let buf = Buffer.create 1024 in
  List.iter
    (fun sp ->
      let j =
        Mdp_prelude.Json.Obj
          [
            ("name", Mdp_prelude.Json.Str sp.sp_name);
            ("start_ns", Mdp_prelude.Json.int sp.sp_start_ns);
            ("dur_ns", Mdp_prelude.Json.int sp.sp_dur_ns);
            ("domain", Mdp_prelude.Json.int sp.sp_domain);
          ]
      in
      Buffer.add_string buf (Mdp_prelude.Json.to_string ~indent:false j);
      Buffer.add_char buf '\n')
    snap.spans;
  Buffer.contents buf

let phase_table ?(prefix = "phase/") ~wall_s snap =
  (* Same-named phase spans are summed into one row (first-occurrence
     order): one-shot phases (explore, render) render as before, while
     repeating ones — phase/spill fires on every eviction burst — show
     their aggregate instead of hundreds of near-zero lines. *)
  let plen = String.length prefix in
  let totals = Hashtbl.create 8 in
  let order = ref [] in
  List.iter
    (fun sp ->
      if
        String.length sp.sp_name > plen
        && String.sub sp.sp_name 0 plen = prefix
      then begin
        let phase =
          String.sub sp.sp_name plen (String.length sp.sp_name - plen)
        in
        match Hashtbl.find_opt totals phase with
        | Some tot -> Hashtbl.replace totals phase (tot + sp.sp_dur_ns)
        | None ->
          Hashtbl.add totals phase sp.sp_dur_ns;
          order := phase :: !order
      end)
    snap.spans;
  List.rev_map
    (fun phase ->
      let s = Clock.ns_to_s (Hashtbl.find totals phase) in
      (phase, s, if wall_s > 0. then s /. wall_s else 0.))
    !order
