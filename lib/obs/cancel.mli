(** Cooperative cancellation tokens with optional deadlines.

    A token is a single atomic flag plus an optional absolute deadline
    against the monotonic {!Clock}. Long-running loops (LTS frontier
    exploration, population chunk evaluation) poll {!cancelled} at
    natural round boundaries and unwind with {!Cancelled} — the work
    stops within one round, every domain observes the same token, and
    the engine that issued the work stays reusable.

    Polling cost is one [Atomic.get] plus, when a deadline is set, one
    no-alloc clock read — cheap enough for once-per-round checks, so
    callers should batch (poll every N items), not poll per element. *)

type t

type reason =
  | Client  (** {!cancel} was called — an explicit caller decision. *)
  | Deadline  (** The deadline passed before the work finished. *)

exception Cancelled of reason
(** Raised by {!check} (and by cooperative loops that use it). Carried
    through unchanged so the caller can distinguish an explicit cancel
    from a blown budget. *)

val create : ?deadline_ns:int -> unit -> t
(** [deadline_ns] is an {e absolute} monotonic reading
    ({!Clock.now_ns} plus the budget); omitted = no deadline. *)

val with_budget_ms : int -> t
(** Token whose deadline is [now + budget] milliseconds. *)

val cancel : t -> unit
(** Idempotent; takes effect at the target loop's next poll. *)

val cancelled : t -> bool
val reason : t -> reason option
(** [None] while the token has not fired. A token that was both
    cancelled and past its deadline reports [Client]: the explicit
    signal wins. *)

val check : t -> unit
(** @raise Cancelled when the token has fired. *)
