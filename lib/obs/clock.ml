external now_ns : unit -> int = "mdp_obs_now_ns" [@@noalloc]

let ns_to_s ns = float_of_int ns *. 1e-9
let ns_to_ms ns = float_of_int ns *. 1e-6
let elapsed_s t0 = ns_to_s (now_ns () - t0)

let time f =
  let t0 = now_ns () in
  let r = f () in
  (r, elapsed_s t0)
