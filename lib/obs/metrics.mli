(** Low-overhead metrics and phase tracing.

    Counters, log-scale latency histograms and named spans, sharded
    per-{!Domain} through [Domain.DLS] so hot paths never contend on a
    lock.  Shards are merged deterministically when a {!snapshot} is
    taken: counters sum, histograms sum bucket-wise, spans sort by
    start time, and every series is ordered by name — the same inputs
    produce the same snapshot regardless of [--jobs].

    The subsystem is disabled by default and every recording entry
    point starts with a single [Atomic.get] check, so instrumentation
    left in hot loops costs one branch when off.  Enable it with
    {!set_enabled} or by exporting [MDPRIV_METRICS=1] in the
    environment. *)

(** {1 Switch} *)

val enabled : unit -> bool
val set_enabled : bool -> unit

(** {1 Recording}

    All of these are no-ops while the subsystem is disabled. *)

val incr : string -> unit
(** Add 1 to a named counter. *)

val add : string -> int -> unit
(** Add an arbitrary amount to a named counter.  Batch hot-loop counts
    locally and [add] them once per round rather than calling {!incr}
    per event. *)

val observe : string -> int -> unit
(** Record a sample in a named histogram.  Buckets are powers of two
    ([0], [1], [2-3], [4-7], ...), so the unit is whatever the caller
    samples — nanoseconds for latencies, element counts for widths. *)

val span : string -> (unit -> 'a) -> 'a
(** [span name f] times [f ()] against the monotonic clock and records
    a span plus a [name] latency observation.  The span is recorded
    even if [f] raises (the exception is re-raised). *)

val set_gauge : string -> int -> unit
(** Set a named gauge (last write wins).  Gauges are point-in-time
    values — process RSS, arena bytes — set explicitly at sampling
    points, never from hot loops and never implicitly by {!snapshot}:
    a run that never sets a gauge carries no machine-dependent values,
    which preserves the byte-identical-snapshot guarantee for the
    deterministic analyses. *)

val sample_memory : unit -> unit
(** Set the process memory gauges: [mem/rss_bytes] (from
    [/proc/self/statm]; 0 where unavailable), [mem/heap_bytes] and
    [mem/top_heap_bytes] (from [Gc.quick_stat]).  Call at reporting
    points — the serve metrics endpoint, benchmark epilogues — not in
    loops. *)

val rss_bytes : unit -> int
(** Current resident set size in bytes ([/proc/self/statm]); 0 where
    unavailable.  Works regardless of the enabled switch. *)

(** {1 Snapshots} *)

type histogram = {
  h_count : int;
  h_sum : int;
  h_min : int;
  h_max : int;
  h_buckets : (int * int) list;  (** (upper bound, count), non-empty buckets *)
}

type span_record = {
  sp_name : string;
  sp_start_ns : int;  (** monotonic reading; comparable within one process *)
  sp_dur_ns : int;
  sp_domain : int;
}

type snapshot = {
  counters : (string * int) list;      (** sorted by name *)
  histograms : (string * histogram) list;  (** sorted by name *)
  gauges : (string * int) list;        (** sorted by name; last-set values *)
  spans : span_record list;            (** sorted by start, then name *)
}

val snapshot : unit -> snapshot
(** Merge all shards into a deterministic snapshot.  Does not clear
    them. *)

val reset : unit -> unit
(** Clear every shard's counters, histograms and spans. *)

(** {1 Rendering} *)

val pp_summary : Format.formatter -> snapshot -> unit
(** Human-readable summary: counters, histogram stats, per-span-name
    totals. *)

val to_prometheus : snapshot -> string
(** Prometheus text exposition format.  Metric names are sanitised and
    prefixed with [mdpriv_]; histograms render as cumulative
    [_bucket]/[_sum]/[_count] series. *)

val spans_to_jsonl : snapshot -> string
(** One JSON object per line per span:
    [{"name":...,"start_ns":...,"dur_ns":...,"domain":...}]. *)

val phase_table :
  ?prefix:string -> wall_s:float -> snapshot -> (string * float * float) list
(** [phase_table ~wall_s snap] extracts spans whose name starts with
    [prefix] (default ["phase/"]) and returns
    [(phase, seconds, fraction of wall_s)] rows in first-execution
    order, with same-named spans summed into one row (a phase that
    fires repeatedly, like [phase/spill], shows its aggregate). *)
