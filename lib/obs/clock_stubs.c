/* Monotonic clock primitive for mdp_obs.

   CLOCK_MONOTONIC is immune to NTP steps and wall-clock adjustments,
   which is the whole point: bench timings and span traces must not be
   corrupted by a clock slew mid-run.  The reading is returned as
   nanoseconds in an OCaml immediate int (63 bits on 64-bit platforms:
   ~292 years of monotonic uptime, no boxing, [@@noalloc]-safe). */

#include <time.h>
#include <caml/mlvalues.h>

CAMLprim value mdp_obs_now_ns(value unit)
{
  struct timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return Val_long((intnat)ts.tv_sec * (intnat)1000000000 + (intnat)ts.tv_nsec);
}
