(* mdpriv — model-driven privacy risk analysis from the command line.

   Subcommands mirror the pipeline: validate a model file, render it (or
   its generated LTS) as DOT, run disclosure-risk analysis, simulate a
   trace against the runtime monitor, and analyse a CSV release for
   k-anonymity and value risk. *)

open Cmdliner
module Core = Mdp_core

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path content =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc content)

(* "synthetic:NA-NF-FPS[@SEED]" (or "synthetic-NA-NF-FPS") names a
   generated model instead of a file — the bench suite's synthetic
   scaling cases, reachable from every subcommand. The parser lives in
   Mdp_scenario.Synthetic so the serve daemon resolves the same model
   from the same string. *)
let load_model path =
  match Mdp_scenario.Synthetic.spec_of_string path with
  | Some (Ok spec) ->
    let diagram, policy = Mdp_scenario.Synthetic.model spec in
    Ok { Mdp_dsl.Parser.diagram; policy; placement = None }
  | Some (Error msg) -> Error (`Msg msg)
  | None -> (
    match Mdp_dsl.Parser.parse (read_file path) with
    | Ok m -> Ok m
    | Error e -> Error (`Msg (Printf.sprintf "%s: %s" path e))
    | exception Sys_error e -> Error (`Msg e))

(* ----- metrics surface ----- *)

type metrics_opts = {
  m_enabled : bool;
  m_prom : string option;
  m_trace : string option;
}

let metrics_term =
  let enabled =
    Arg.(
      value & flag
      & info [ "metrics" ]
          ~doc:
            "Record metrics and phase spans while the command runs, then \
             print a per-phase breakdown and metrics summary to stderr \
             (stdout output is unchanged).")
  in
  let prom =
    Arg.(
      value
      & opt (some string) None
      & info [ "metrics-prom" ] ~docv:"FILE"
          ~doc:
            "Write the recorded metrics to $(docv) in Prometheus text \
             exposition format (implies metrics recording).")
  in
  let trace =
    Arg.(
      value
      & opt (some string) None
      & info [ "metrics-trace" ] ~docv:"FILE"
          ~doc:
            "Write the recorded spans to $(docv) as JSONL, one span per \
             line (implies metrics recording).")
  in
  Term.(
    const (fun m_enabled m_prom m_trace -> { m_enabled; m_prom; m_trace })
    $ enabled $ prom $ trace)

(* Run a command body with the metrics subsystem enabled, then report.
   Everything goes to stderr or to files, so enabling metrics changes
   no byte of the command's stdout output. *)
let with_metrics opts f =
  if not (opts.m_enabled || opts.m_prom <> None || opts.m_trace <> None) then
    f ()
  else begin
    Mdp_obs.Metrics.set_enabled true;
    let t0 = Mdp_obs.Clock.now_ns () in
    let code = f () in
    let wall = Mdp_obs.Clock.elapsed_s t0 in
    let snap = Mdp_obs.Metrics.snapshot () in
    let phases = Mdp_obs.Metrics.phase_table ~wall_s:wall snap in
    if phases <> [] then begin
      Format.eprintf "@.-- phases (wall %.3fs) --@." wall;
      List.iter
        (fun (name, s, frac) ->
          Format.eprintf "  %-12s %8.3fs  %5.1f%%@." name s (100. *. frac))
        phases;
      let total = List.fold_left (fun acc (_, s, _) -> acc +. s) 0.0 phases in
      Format.eprintf "  %-12s %8.3fs  %5.1f%%@." "total" total
        (if wall > 0. then 100. *. total /. wall else 0.)
    end;
    Format.eprintf "@.-- metrics --@.%a" Mdp_obs.Metrics.pp_summary snap;
    Option.iter
      (fun p -> write_file p (Mdp_obs.Metrics.to_prometheus snap))
      opts.m_prom;
    Option.iter
      (fun p -> write_file p (Mdp_obs.Metrics.spans_to_jsonl snap))
      opts.m_trace;
    code
  end

(* ----- shared arguments ----- *)

let model_arg =
  let doc =
    "Model file in the mdpriv description language, or \
     synthetic:NACTORS-NFIELDS-FLOWS[@SEED] for a generated scaling model."
  in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"MODEL" ~doc)

let services_arg =
  let doc = "Restrict to these services (repeatable)." in
  Arg.(value & opt_all string [] & info [ "service" ] ~docv:"SERVICE" ~doc)

let jobs_arg =
  let doc =
    "Domains used for parallel work (LTS generation, population analysis, \
     Mondrian partitioning). The result is identical for every value, \
     including state numbering."
  in
  Arg.(value & opt int 1 & info [ "jobs"; "j" ] ~docv:"N" ~doc)

let max_states_arg =
  let doc =
    "Abort LTS generation past this many states (guards against \
     state-space explosion on large models)."
  in
  Arg.(
    value
    & opt int Core.Generate.default_options.Core.Generate.max_states
    & info [ "max-states" ] ~docv:"N" ~doc)

(* Byte sizes with binary suffixes: "48M", "2G", or plain bytes. *)
let parse_size s =
  let err () =
    Error (`Msg (Printf.sprintf "invalid size %S (use e.g. 64M, 2G, 500000)" s))
  in
  let n = String.length s in
  if n = 0 then err ()
  else
    let mul, digits =
      match Char.uppercase_ascii s.[n - 1] with
      | 'K' -> (1024, String.sub s 0 (n - 1))
      | 'M' -> (1024 * 1024, String.sub s 0 (n - 1))
      | 'G' -> (1024 * 1024 * 1024, String.sub s 0 (n - 1))
      | _ -> (1, s)
    in
    match int_of_string_opt digits with
    | Some v when v > 0 -> Ok (v * mul)
    | Some _ | None -> err ()

let size_conv =
  Arg.conv (parse_size, fun ppf v -> Format.fprintf ppf "%d" v)

let mem_budget_arg =
  let doc =
    "Resident-byte budget for the packed LTS engine (suffixes K/M/G; \
     plain numbers are bytes). Above it, sealed arena chunks and dedup \
     tables spill to append-only files in a temporary directory and \
     exploration completes bounded by disk instead of RAM — with \
     byte-identical state numbering for every budget and $(b,--jobs). \
     Unset: never spill."
  in
  Arg.(
    value
    & opt (some size_conv) None
    & info [ "mem-budget" ] ~docv:"BYTES" ~doc)

let exits_with_error = 1

(* Generate, turning the state-guard exception into the structured
   failure message (limit reached + remediation hint) instead of an
   escaping exception. *)
let generate ?options ?jobs u k =
  match
    Mdp_obs.Metrics.span "phase/explore" (fun () ->
        Core.Generate.run ?options ?jobs u)
  with
  | lts -> k lts
  | exception Mdp_lts.Lts.Too_many_states limit ->
    prerr_endline
      (Core.Analysis.failure_message
         (Core.Analysis.State_limit
            { limit; hint = Core.Analysis.state_limit_hint }));
    exits_with_error

(* Same contract for the full-analysis paths. *)
let run_analysis ?options ?profile diagram policy k =
  match Core.Analysis.run_checked ?options ?profile diagram policy with
  | Ok analysis -> k analysis
  | Error failure ->
    prerr_endline (Core.Analysis.failure_message failure);
    exits_with_error

(* ----- validate ----- *)

let validate_cmd =
  let run path =
    match load_model path with
    | Error (`Msg e) ->
      prerr_endline e;
      exits_with_error
    | Ok model ->
      let d = model.Mdp_dsl.Parser.diagram in
      Printf.printf
        "ok: %d actors, %d datastores, %d services, %d fields (%d state \
         variable pairs)\n"
        (List.length d.Mdp_dataflow.Diagram.actors)
        (List.length d.Mdp_dataflow.Diagram.datastores)
        (List.length d.Mdp_dataflow.Diagram.services)
        (List.length (Mdp_dataflow.Diagram.all_fields d))
        (List.length d.Mdp_dataflow.Diagram.actors
        * List.length (Mdp_dataflow.Diagram.all_fields d));
      0
  in
  Cmd.v
    (Cmd.info "validate" ~doc:"Parse and validate a model file.")
    Term.(const run $ model_arg)

(* ----- dot ----- *)

let dot_cmd =
  let run path lts_mode flow_only services jobs =
    match load_model path with
    | Error (`Msg e) ->
      prerr_endline e;
      exits_with_error
    | Ok { diagram; policy; _ } ->
      if not lts_mode then begin
        print_string (Mdp_dataflow.Dot.to_string diagram);
        0
      end
      else begin
        let u = Core.Universe.make diagram policy in
        let base =
          if flow_only then Core.Generate.flow_only
          else Core.Generate.default_options
        in
        let options =
          match services with
          | [] -> base
          | l -> { base with Core.Generate.services = Some l }
        in
        generate ~options ~jobs u (fun lts ->
            print_string (Core.Lts_render.to_dot u lts);
            0)
      end
  in
  let lts_flag =
    Arg.(value & flag & info [ "lts" ] ~doc:"Render the generated LTS instead of the data-flow diagram.")
  in
  let flow_only_flag =
    Arg.(value & flag & info [ "flow-only" ] ~doc:"Omit policy-derived potential actions.")
  in
  Cmd.v
    (Cmd.info "dot" ~doc:"Emit Graphviz for the data-flow diagram or the privacy LTS.")
    Term.(const run $ model_arg $ lts_flag $ flow_only_flag $ services_arg $ jobs_arg)

(* ----- lts ----- *)

let lts_cmd =
  let run path flow_only granular services jobs max_states mem_budget metrics
      =
    with_metrics metrics @@ fun () ->
    match load_model path with
    | Error (`Msg e) ->
      prerr_endline e;
      exits_with_error
    | Ok { diagram; policy; _ } ->
      let u = Core.Universe.make diagram policy in
      let base =
        if flow_only then Core.Generate.flow_only
        else Core.Generate.default_options
      in
      let options =
        {
          base with
          Core.Generate.granular_reads = granular;
          max_states;
          mem_budget;
          services = (match services with [] -> None | l -> Some l);
        }
      in
      generate ~options ~jobs u (fun lts ->
          Mdp_obs.Metrics.span "phase/render" (fun () ->
              print_endline (Core.Lts_render.summary u lts));
          0)
  in
  let flow_only_flag =
    Arg.(value & flag & info [ "flow-only" ] ~doc:"Flows only; no potential actions.")
  in
  let granular_flag =
    Arg.(value & flag & info [ "granular" ] ~doc:"Potential reads fetch one field at a time.")
  in
  Cmd.v
    (Cmd.info "lts" ~doc:"Generate the privacy LTS and print its statistics.")
    Term.(
      const run $ model_arg $ flow_only_flag $ granular_flag $ services_arg
      $ jobs_arg $ max_states_arg $ mem_budget_arg $ metrics_term)

(* ----- risk ----- *)

let parse_sensitivity s =
  match String.split_on_char '=' s with
  | [ field; value ] -> (
    match float_of_string_opt value with
    | Some v -> Ok (Mdp_dataflow.Field.of_name field, v)
    | None -> Error (`Msg (Printf.sprintf "bad sensitivity value in %S" s)))
  | _ -> Error (`Msg (Printf.sprintf "expected Field=0.9, got %S" s))

let risk_cmd =
  let run path agreed sens_specs json max_states mem_budget metrics =
    with_metrics metrics @@ fun () ->
    match load_model path with
    | Error (`Msg e) ->
      prerr_endline e;
      exits_with_error
    | Ok { diagram; policy; _ } -> (
      let rec collect acc = function
        | [] -> Ok (List.rev acc)
        | spec :: rest -> (
          match parse_sensitivity spec with
          | Ok pair -> collect (pair :: acc) rest
          | Error (`Msg e) -> Error e)
      in
      match collect [] sens_specs with
      | Error e ->
        prerr_endline e;
        exits_with_error
      | Ok sensitivities -> (
        let profile =
          Core.User_profile.make ~sensitivities ~agreed_services:agreed ()
        in
        let options =
          { Core.Generate.default_options with max_states; mem_budget }
        in
        run_analysis ~options ~profile diagram policy (fun analysis ->
            Mdp_obs.Metrics.span "phase/render" (fun () ->
                if json then print_endline (Core.Report.to_string analysis)
                else Format.printf "%a@." Core.Analysis.pp_summary analysis);
            0)))
  in
  let agree =
    Arg.(
      value & opt_all string []
      & info [ "agree" ] ~docv:"SERVICE" ~doc:"Service the user agreed to (repeatable).")
  in
  let sens =
    Arg.(
      value & opt_all string []
      & info [ "sensitivity" ] ~docv:"FIELD=V"
          ~doc:"Field sensitivity in [0,1] (repeatable), e.g. Diagnosis=0.9.")
  in
  let json =
    Arg.(value & flag & info [ "json" ] ~doc:"Emit the full report as JSON.")
  in
  Cmd.v
    (Cmd.info "risk" ~doc:"Run §III-A disclosure-risk analysis for a user profile.")
    Term.(
      const run $ model_arg $ agree $ sens $ json $ max_states_arg
      $ mem_budget_arg $ metrics_term)

(* ----- whatif / sweep ----- *)

let collect_sensitivities specs =
  let rec collect acc = function
    | [] -> Ok (List.rev acc)
    | spec :: rest -> (
      match parse_sensitivity spec with
      | Ok pair -> collect (pair :: acc) rest
      | Error (`Msg e) -> Error e)
  in
  collect [] specs

let profile_args =
  let agree =
    Arg.(
      value & opt_all string []
      & info [ "agree" ] ~docv:"SERVICE"
          ~doc:"Service the user agreed to (repeatable).")
  in
  let sens =
    Arg.(
      value & opt_all string []
      & info [ "sensitivity" ] ~docv:"FIELD=V"
          ~doc:"Field sensitivity in [0,1] (repeatable), e.g. Diagnosis=0.9.")
  in
  (agree, sens)

let pp_invalidation ppf (inv : Core.Edit.invalidation) =
  let flags =
    [
      ("lts", inv.Core.Edit.inv_lts);
      ("cone", inv.Core.Edit.inv_cone);
      ("plan", inv.Core.Edit.inv_plan);
      ("risk", inv.Core.Edit.inv_risk);
      ("classes", inv.Core.Edit.inv_classes);
      ("sigma", inv.Core.Edit.inv_sigma <> None);
      ("pseudonym", inv.Core.Edit.inv_pseudonym);
      ("consistency", inv.Core.Edit.inv_consistency);
    ]
  in
  match List.filter_map (fun (n, b) -> if b then Some n else None) flags with
  | [] -> Format.pp_print_string ppf "nothing"
  | l -> Format.pp_print_string ppf (String.concat ", " l)

let worst_of (t : Core.Analysis.t) =
  match t.Core.Analysis.disclosure with
  | Some r -> Core.Disclosure_risk.max_level r
  | None -> Core.Level.None_

let whatif_cmd =
  let run path agreed sens_specs edit_specs diff json jobs max_states
      mem_budget metrics =
    with_metrics metrics @@ fun () ->
    match load_model path with
    | Error (`Msg e) ->
      prerr_endline e;
      exits_with_error
    | Ok { diagram; policy; _ } -> (
      match (collect_sensitivities sens_specs, Core.Edit.parse_all edit_specs) with
      | Error e, _ | _, Error e ->
        prerr_endline e;
        exits_with_error
      | Ok sensitivities, Ok edits -> (
        let profile =
          Core.User_profile.make ~sensitivities ~agreed_services:agreed ()
        in
        let options =
          { Core.Generate.default_options with max_states; mem_budget }
        in
        match
          Core.Analysis.run_checked ~options ~profile ~jobs diagram policy
        with
        | Error failure ->
          prerr_endline (Core.Analysis.failure_message failure);
          exits_with_error
        | Ok base -> (
          let inputs = Core.Analysis.inputs_of base in
          match Core.Edit.apply_all inputs edits with
          | Error e ->
            prerr_endline ("edit does not apply: " ^ e);
            exits_with_error
          | Ok after_inputs -> (
            let inv =
              Core.Edit.classify ~options ~before:inputs ~after:after_inputs
            in
            match Core.Analysis.run_incremental ~jobs ~previous:base edits with
            | exception Mdp_lts.Lts.Too_many_states limit ->
              prerr_endline
                (Core.Analysis.failure_message
                   (Core.Analysis.State_limit
                      { limit; hint = Core.Analysis.state_limit_hint }));
              exits_with_error
            | after ->
              (* With --json, stdout carries the report alone; the edit
                 trail goes to stderr so the JSON stays parseable. *)
              let meta =
                if json then Format.err_formatter else Format.std_formatter
              in
              List.iter
                (fun e -> Format.fprintf meta "edit: %a@." Core.Edit.pp e)
                edits;
              Format.fprintf meta "invalidated: %a  (%s)@." pp_invalidation inv
                (if inv.Core.Edit.inv_lts then
                   if inv.Core.Edit.inv_cone then
                     "cone-scoped re-exploration candidate"
                   else "full re-exploration"
                 else "LTS reused");
              Format.fprintf meta "worst risk: %a -> %a@." Core.Level.pp
                (worst_of base) Core.Level.pp (worst_of after);
              (if diff then
                 match
                   ( base.Core.Analysis.disclosure,
                     after.Core.Analysis.disclosure )
                 with
                 | Some before, Some after ->
                   Format.fprintf meta "%a@." Core.Risk_diff.pp
                     (Core.Risk_diff.diff ~before ~after)
                 | _ -> ());
              Mdp_obs.Metrics.span "phase/render" (fun () ->
                  if json then print_endline (Core.Report.to_string after)
                  else Format.printf "%a@." Core.Analysis.pp_summary after);
              0))))
  in
  let agree, sens = profile_args in
  let edit_specs =
    Arg.(
      non_empty & opt_all string []
      & info [ "edit"; "e" ] ~docv:"EDIT"
          ~doc:
            "Model edit, applied in order (repeatable): \
             $(b,grant:SUBJ:PERMS:STORE[:FIELDS]), \
             $(b,revoke:SUBJ:PERMS:STORE[:FIELDS]), \
             $(b,flow+:SERVICE:ORDER:SRC>DST:FIELDS[:PURPOSE]), \
             $(b,flow-:SERVICE:ORDER), $(b,sensitivity:FIELD=V), \
             $(b,agree:+SERVICE), $(b,agree:-SERVICE).")
  in
  let diff =
    Arg.(
      value & flag
      & info [ "diff" ]
          ~doc:
            "Print the per-signature risk diff (removed / added / \
             re-levelled findings) between the baseline and the edited \
             model.")
  in
  let json =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:
            "Emit the post-edit report as JSON on stdout (the edit trail \
             moves to stderr).")
  in
  Cmd.v
    (Cmd.info "whatif"
       ~doc:
         "Apply model edits and recompute the risk report incrementally \
          (§IV-A edit loop)."
       ~man:
         [
           `S Manpage.s_description;
           `P
             "Runs the baseline analysis once, classifies the edits' \
              invalidation impact, and recomputes only what they \
              invalidate. The result is byte-identical to a cold run on \
              the edited model; edits the classifier proves \
              LTS-preserving skip re-exploration entirely.";
         ])
    Term.(
      const run $ model_arg $ agree $ sens $ edit_specs $ diff $ json
      $ jobs_arg $ max_states_arg $ mem_budget_arg $ metrics_term)

let sweep_cmd =
  let run path agreed sens_specs exact top jobs max_states mem_budget metrics
      =
    with_metrics metrics @@ fun () ->
    match load_model path with
    | Error (`Msg e) ->
      prerr_endline e;
      exits_with_error
    | Ok { diagram; policy; _ } -> (
      match collect_sensitivities sens_specs with
      | Error e ->
        prerr_endline e;
        exits_with_error
      | Ok sensitivities -> (
        let profile =
          Core.User_profile.make ~sensitivities ~agreed_services:agreed ()
        in
        let options =
          { Core.Generate.default_options with max_states; mem_budget }
        in
        match
          Core.Analysis.run_checked ~options ~profile ~jobs diagram policy
        with
        | Error failure ->
          prerr_endline (Core.Analysis.failure_message failure);
          exits_with_error
        | Ok base -> (
          match Core.Whatif.prepare base with
          | Error e ->
            prerr_endline e;
            exits_with_error
          | Ok b ->
            let candidates = Core.Whatif.acl_candidates b in
            let ranked = Core.Whatif.sweep ~jobs ~exact b candidates in
            Format.printf
              "sweep: %d single-ACL candidates over %d finding signatures \
               (%d sites), worst before %a@."
              (List.length candidates)
              (Core.Whatif.num_signatures b)
              (Core.Whatif.num_sites b) Core.Level.pp
              (Core.Whatif.worst_before b);
            let shown =
              if top > 0 then List.filteri (fun i _ -> i < top) ranked
              else ranked
            in
            List.iter
              (fun { Core.Whatif.outcome; score } ->
                let score_s =
                  (* min_int marks a candidate that was classified but not
                     computed (replay/full-rerun without --exact). *)
                  if score = min_int then "   ?" else Printf.sprintf "%+4d" score
                in
                let worst_s =
                  match outcome.Core.Whatif.worst_after with
                  | Some l -> Core.Level.to_string l
                  | None -> "-"
                in
                Format.printf "  %s  %-10s  worst %-6s  %a@." score_s
                  (Core.Whatif.classification_to_string
                     outcome.Core.Whatif.classification)
                  worst_s Core.Edit.pp outcome.Core.Whatif.edit)
              shown;
            let omitted = List.length ranked - List.length shown in
            if omitted > 0 then
              Format.printf "  ... %d more (raise --top)@." omitted;
            0)))
  in
  let agree, sens = profile_args in
  let exact =
    Arg.(
      value & flag
      & info [ "exact" ]
          ~doc:
            "Compute replay/full-rerun candidates too, via the full \
             incremental engine (slower; results stay byte-identical to \
             cold runs).")
  in
  let top =
    Arg.(
      value & opt int 0
      & info [ "top" ] ~docv:"N"
          ~doc:"Show only the N best-ranked candidates (0 = all).")
  in
  Cmd.v
    (Cmd.info "sweep"
       ~doc:
         "Rank every single-ACL removal by risk reduction, sharing one \
          compiled analysis."
       ~man:
         [
           `S Manpage.s_description;
           `P
             "Builds the candidate set from the policy's concrete grants \
              (one revocation per Read/Write tuple, one whole-store \
              revocation per Delete holder), evaluates each as a delta \
              against the shared compiled risk plan, and ranks by the \
              summed level-rank improvement. Positive scores reduce \
              risk; candidates needing re-exploration are listed but \
              only computed under $(b,--exact).";
         ])
    Term.(
      const run $ model_arg $ agree $ sens $ exact $ top $ jobs_arg
      $ max_states_arg $ mem_budget_arg $ metrics_term)

(* ----- simulate ----- *)

let parse_snooper s =
  match String.split_on_char ':' s with
  | [ actor; store; prob ] -> (
    match float_of_string_opt prob with
    | Some probability -> Ok { Mdp_runtime.Sim.actor; store; probability }
    | None -> Error (Printf.sprintf "bad probability in %S" s))
  | _ -> Error (Printf.sprintf "expected ACTOR:STORE:PROB, got %S" s)

let simulate_cmd =
  let run path services snoop_specs seed agreed sens_specs metrics =
    with_metrics metrics @@ fun () ->
    match load_model path with
    | Error (`Msg e) ->
      prerr_endline e;
      exits_with_error
    | Ok { diagram; policy; _ } -> (
      let rec collect acc = function
        | [] -> Ok (List.rev acc)
        | spec :: rest -> (
          match parse_snooper spec with
          | Ok sn -> collect (sn :: acc) rest
          | Error e -> Error e)
      in
      match collect [] snoop_specs with
      | Error e ->
        prerr_endline e;
        exits_with_error
      | Ok snoopers ->
        let sensitivities =
          List.filter_map
            (fun s -> Result.to_option (parse_sensitivity s))
            sens_specs
        in
        let profile =
          Core.User_profile.make ~sensitivities ~agreed_services:agreed ()
        in
        run_analysis ~profile diagram policy @@ fun analysis ->
        let services =
          match services with
          | [] ->
            List.map
              (fun (s : Mdp_dataflow.Service.t) -> s.id)
              diagram.Mdp_dataflow.Diagram.services
          | l -> l
        in
        match
          Mdp_runtime.Sim.run analysis.Core.Analysis.universe
            { seed; services; snoopers }
        with
        | Error e ->
          prerr_endline e;
          exits_with_error
        | Ok trace ->
          let monitor =
            Mdp_runtime.Monitor.create analysis.Core.Analysis.universe
              analysis.Core.Analysis.lts
          in
          List.iter
            (fun event ->
              Format.printf "%a@." Mdp_runtime.Event.pp event;
              List.iter
                (fun alert ->
                  Format.printf "  !! %a@." Mdp_runtime.Monitor.pp_alert alert)
                (Mdp_runtime.Monitor.observe monitor event))
            trace;
          0)
  in
  let snoop =
    Arg.(
      value & opt_all string []
      & info [ "snoop" ] ~docv:"ACTOR:STORE:PROB"
          ~doc:"Opportunistic reader (repeatable).")
  in
  let seed =
    Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc:"Simulation seed.")
  in
  let agree =
    Arg.(value & opt_all string [] & info [ "agree" ] ~docv:"SERVICE" ~doc:"Agreed service.")
  in
  let sens =
    Arg.(value & opt_all string [] & info [ "sensitivity" ] ~docv:"FIELD=V" ~doc:"Field sensitivity.")
  in
  Cmd.v
    (Cmd.info "simulate"
       ~doc:"Simulate a subject's trace and run the privacy monitor over it.")
    Term.(
      const run $ model_arg $ services_arg $ snoop $ seed $ agree $ sens
      $ metrics_term)

(* ----- anon ----- *)

let anon_cmd =
  let run csv_path quasi sensitive k closeness confidence jobs engine metrics =
    with_metrics metrics @@ fun () ->
    let kinds =
      List.map (fun q -> (q, Mdp_anon.Attribute.Quasi)) quasi
      @ [ (sensitive, Mdp_anon.Attribute.Sensitive) ]
    in
    match Mdp_anon.Csv.parse ~kinds (read_file csv_path) with
    | Error e ->
      prerr_endline e;
      exits_with_error
    | Ok ds -> (
      let policy = { Mdp_anon.Value_risk.sensitive; closeness; confidence } in
      let anonymised, sweep =
        match engine with
        | `Naive ->
          ( Mdp_anon.Mondrian.anonymise ~k ds,
            fun release -> Mdp_anon.Value_risk.sweep release policy )
        | `Columnar -> (
          (* [mondrian_release] keeps the compiled release, so the
             value-risk sweep reuses its dictionaries instead of
             recompiling the dataset it just produced. *)
          match
            Mdp_anon.Columnar.mondrian_release ~jobs ~k
              (Mdp_anon.Columnar.compile ds)
          with
          | Error e -> (Error e, fun _release -> [])
          | Ok rplan ->
            ( Ok (Mdp_anon.Columnar.source rplan),
              fun _release ->
                Mdp_anon.Columnar.value_risk_sweep rplan policy ))
      in
      match anonymised with
      | Error e ->
        prerr_endline e;
        exits_with_error
      | Ok release ->
        print_string (Mdp_anon.Csv.render release);
        List.iter
          (fun report ->
            Format.printf "%a@." Mdp_anon.Value_risk.pp_report report)
          (sweep release);
        0)
  in
  let csv =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"CSV" ~doc:"Microdata CSV file.")
  in
  let quasi =
    Arg.(value & opt_all string [] & info [ "quasi" ] ~docv:"ATTR" ~doc:"Quasi-identifier column.")
  in
  let sensitive =
    Arg.(required & opt (some string) None & info [ "sensitive" ] ~docv:"ATTR" ~doc:"Sensitive column.")
  in
  let k = Arg.(value & opt int 2 & info [ "k"; "kanon" ] ~doc:"k-anonymity parameter.") in
  let closeness =
    Arg.(value & opt float 5.0 & info [ "closeness" ] ~doc:"Value-risk closeness radius.")
  in
  let confidence =
    Arg.(value & opt float 0.9 & info [ "confidence" ] ~doc:"Violation confidence threshold.")
  in
  let engine =
    Arg.(
      value
      & opt (enum [ ("columnar", `Columnar); ("naive", `Naive) ]) `Columnar
      & info [ "engine" ] ~docv:"ENGINE"
          ~doc:
            "Anonymisation engine: $(b,columnar) (typed column compilation, \
             in-place parallel Mondrian and hashed equivalence classes, the \
             default) or $(b,naive) (the row-at-a-time reference modules). \
             Both produce identical releases and reports.")
  in
  Cmd.v
    (Cmd.info "anon"
       ~doc:"Mondrian-anonymise a CSV and sweep §III-B value risk over it.")
    Term.(
      const run $ csv $ quasi $ sensitive $ k $ closeness $ confidence
      $ jobs_arg $ engine $ metrics_term)


(* ----- check (requirements) ----- *)

let check_cmd =
  let run path specs agreed sens_specs =
    match load_model path with
    | Error (`Msg e) ->
      prerr_endline e;
      exits_with_error
    | Ok { diagram; policy; _ } -> (
      let rec collect acc = function
        | [] -> Ok (List.rev acc)
        | spec :: rest -> (
          match Core.Requirement.of_spec spec with
          | Ok r -> collect (r :: acc) rest
          | Error e -> Error e)
      in
      match collect [] specs with
      | Error e ->
        prerr_endline e;
        exits_with_error
      | Ok requirements ->
        let u = Core.Universe.make diagram policy in
        generate u @@ fun lts ->
        (* Risk annotations are needed for maxrisk requirements. *)
        let sensitivities =
          List.filter_map
            (fun s -> Result.to_option (parse_sensitivity s))
            sens_specs
        in
        (if agreed <> [] || sensitivities <> [] then
           let profile =
             Core.User_profile.make ~sensitivities ~agreed_services:agreed ()
           in
           ignore (Core.Disclosure_risk.analyse u lts profile));
        let violations = Core.Requirement.check u lts requirements in
        List.iter
          (fun r ->
            if
              List.exists
                (fun (v : Core.Requirement.violation) -> v.requirement = r)
                violations
            then Format.printf "VIOLATED %a@." Core.Requirement.pp r
            else Format.printf "ok       %a@." Core.Requirement.pp r)
          requirements;
        List.iter
          (fun v -> Format.printf "@.%a@." Core.Requirement.pp_violation v)
          violations;
        if violations = [] then 0 else exits_with_error)
  in
  let specs =
    Arg.(
      value & opt_all string []
      & info [ "require" ] ~docv:"REQ"
          ~doc:
            "Requirement (repeatable): never=A:F, nevercould=A:F, \
             noaction=A:KIND, purposes=F:p1;p2, maxrisk=LEVEL.")
  in
  let agree =
    Arg.(value & opt_all string [] & info [ "agree" ] ~docv:"SERVICE" ~doc:"Agreed service (for maxrisk).")
  in
  let sens =
    Arg.(value & opt_all string [] & info [ "sensitivity" ] ~docv:"FIELD=V" ~doc:"Field sensitivity (for maxrisk).")
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:"Check declarative privacy requirements against the generated LTS.")
    Term.(const run $ model_arg $ specs $ agree $ sens)

(* ----- population ----- *)

let population_cmd =
  let run path size seed agree_probability jobs engine metrics =
    with_metrics metrics @@ fun () ->
    match load_model path with
    | Error (`Msg e) ->
      prerr_endline e;
      exits_with_error
    | Ok { diagram; policy; _ } ->
      let u = Core.Universe.make diagram policy in
      generate ~jobs u @@ fun lts ->
      let spec =
        {
          Core.Population.seed;
          size;
          westin_mix = Core.Population.default_mix;
          agree_probability;
        }
      in
      let profiles = Core.Population.simulate spec diagram in
      let aggregate =
        Mdp_obs.Metrics.span "phase/analyse" (fun () ->
            match engine with
            | `Compiled -> Core.Population.analyse_compiled ~jobs u lts profiles
            | `Naive -> Core.Population.analyse u lts profiles)
      in
      Mdp_obs.Metrics.span "phase/render" (fun () ->
          Format.printf "%a@." Core.Population.pp_aggregate aggregate);
      0
  in
  let size =
    Arg.(value & opt int 100 & info [ "size" ] ~docv:"N" ~doc:"Population size.")
  in
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Simulation seed.") in
  let agreep =
    Arg.(
      value & opt float 0.6
      & info [ "agree-probability" ] ~docv:"P"
          ~doc:"Per-service agreement probability.")
  in
  let engine =
    Arg.(
      value
      & opt (enum [ ("compiled", `Compiled); ("naive", `Naive) ]) `Compiled
      & info [ "engine" ] ~docv:"ENGINE"
          ~doc:
            "Population engine: $(b,compiled) (plan compilation + profile \
             equivalence classes, the default) or $(b,naive) (one full \
             disclosure analysis per profile). Both produce identical \
             aggregates.")
  in
  Cmd.v
    (Cmd.info "population"
       ~doc:"Aggregate disclosure risk over a simulated user population.")
    Term.(
      const run $ model_arg $ size $ seed $ agreep $ jobs_arg $ engine
      $ metrics_term)


(* ----- monitor (offline trace replay) ----- *)

let monitor_cmd =
  let run path trace_path agreed sens_specs metrics =
    with_metrics metrics @@ fun () ->
    match load_model path with
    | Error (`Msg e) ->
      prerr_endline e;
      exits_with_error
    | Ok { diagram; policy; _ } -> (
      match Mdp_runtime.Trace.of_lines (read_file trace_path) with
      | Error e ->
        prerr_endline (trace_path ^ ": " ^ e);
        exits_with_error
      | Ok trace ->
        let sensitivities =
          List.filter_map
            (fun s -> Result.to_option (parse_sensitivity s))
            sens_specs
        in
        let profile =
          Core.User_profile.make ~sensitivities ~agreed_services:agreed ()
        in
        run_analysis ~profile diagram policy @@ fun analysis ->
        Format.printf "%a@." Mdp_runtime.Trace.pp_stats
          (Mdp_runtime.Trace.stats trace);
        let monitor =
          Mdp_runtime.Monitor.create analysis.Core.Analysis.universe
            analysis.Core.Analysis.lts
        in
        let alerts = ref 0 in
        List.iter
          (fun event ->
            List.iter
              (fun alert ->
                incr alerts;
                Format.printf "%a@." Mdp_runtime.Monitor.pp_alert alert)
              (Mdp_runtime.Monitor.observe monitor event))
          trace;
        Format.printf "%d event(s), %d alert(s)@." (List.length trace) !alerts;
        if !alerts = 0 then 0 else exits_with_error)
  in
  let trace_arg =
    Arg.(required & pos 1 (some file) None & info [] ~docv:"TRACE" ~doc:"Recorded event trace file.")
  in
  let agree =
    Arg.(value & opt_all string [] & info [ "agree" ] ~docv:"SERVICE" ~doc:"Agreed service.")
  in
  let sens =
    Arg.(value & opt_all string [] & info [ "sensitivity" ] ~docv:"FIELD=V" ~doc:"Field sensitivity.")
  in
  Cmd.v
    (Cmd.info "monitor"
       ~doc:"Replay a recorded event trace through the privacy monitor.")
    Term.(const run $ model_arg $ trace_arg $ agree $ sens $ metrics_term)


(* ----- transfers (deployment analysis) ----- *)

let transfers_cmd =
  let run path agreed sens_specs =
    match load_model path with
    | Error (`Msg e) ->
      prerr_endline e;
      exits_with_error
    | Ok { diagram; policy; placement } -> (
      match placement with
      | None ->
        prerr_endline
          "model declares no deployment: add node/place stanzas";
        exits_with_error
      | Some p -> (
        let u = Core.Universe.make diagram policy in
        let nodes =
          List.map
            (fun (n : Mdp_dsl.Parser.node_decl) ->
              { Mdp_runtime.Deployment.id = n.node; region = n.region })
            p.nodes
        in
        match
          Mdp_runtime.Deployment.create ~nodes ~actors:p.actor_nodes
            ~stores:p.store_nodes u
        with
        | Error msgs ->
          List.iter prerr_endline msgs;
          exits_with_error
        | Ok deployment ->
          generate u @@ fun lts ->
          let transfers = Mdp_runtime.Deployment.transfers deployment lts in
          List.iter
            (fun tr ->
              Format.printf "%a@." Mdp_runtime.Deployment.pp_transfer tr)
            transfers;
          let sensitivities =
            List.filter_map
              (fun s -> Result.to_option (parse_sensitivity s))
              sens_specs
          in
          if agreed <> [] || sensitivities <> [] then begin
            let profile =
              Core.User_profile.make ~sensitivities ~agreed_services:agreed ()
            in
            match
              Mdp_runtime.Deployment.risky_transfers deployment lts profile
            with
            | [] -> Format.printf "@.no unconsented cross-region transfers@."
            | risky ->
              Format.printf "@.unconsented cross-region transfers:@.";
              List.iter
                (fun tr ->
                  Format.printf "  %a@." Mdp_runtime.Deployment.pp_transfer tr)
                risky
          end;
          0))
  in
  let agree =
    Arg.(value & opt_all string [] & info [ "agree" ] ~docv:"SERVICE" ~doc:"Agreed service.")
  in
  let sens =
    Arg.(value & opt_all string [] & info [ "sensitivity" ] ~docv:"FIELD=V" ~doc:"Field sensitivity.")
  in
  Cmd.v
    (Cmd.info "transfers"
       ~doc:"List network transfers under the model's node placement.")
    Term.(const run $ model_arg $ agree $ sens)


(* ----- transparency ----- *)

let transparency_cmd =
  let run path worst =
    match load_model path with
    | Error (`Msg e) ->
      prerr_endline e;
      exits_with_error
    | Ok { diagram; policy; _ } ->
      let u = Core.Universe.make diagram policy in
      generate u @@ fun lts ->
      let entries =
        if worst then Core.Transparency.worst_case u lts
        else Core.Transparency.at_state u lts (Core.Plts.initial lts)
      in
      (if entries = [] then
         print_endline
           "(no exposure at the initial state; pass --worst-case for the \
            whole model)"
       else Format.printf "@[<v>%a@]@." Core.Transparency.pp entries);
      0
  in
  let worst =
    Arg.(
      value & flag
      & info [ "worst-case" ]
          ~doc:"Union over every reachable state instead of the initial one.")
  in
  Cmd.v
    (Cmd.info "transparency"
       ~doc:"Data-subject transparency report: who could see which fields.")
    Term.(const run $ model_arg $ worst)

(* ----- serve ----- *)

let serve_cmd =
  let run workers queue_cap jobs cache_cap deadline_ms max_states mem_budget
      soak seed fault_rate metrics =
    with_metrics metrics @@ fun () ->
    match soak with
    | Some requests ->
      (* In-process chaos soak: seeded adversarial workload through the
         same Server/Engine stack the daemon runs, with the resilience
         contract checked by the harness. *)
      let spec =
        {
          Mdp_serve.Soak.default_spec with
          seed;
          requests;
          workers;
          queue_cap;
          fault_rate;
        }
      in
      let outcome = Mdp_serve.Soak.run spec in
      Format.printf "%a@." Mdp_serve.Soak.pp_outcome outcome;
      if outcome.Mdp_serve.Soak.ok then 0 else exits_with_error
    | None ->
      let config =
        {
          Mdp_serve.Engine.default_config with
          jobs;
          result_cap = cache_cap;
          stale_cap = max 1 (cache_cap / 2);
          default_deadline_ms = deadline_ms;
          max_states;
          mem_budget;
        }
      in
      let engine = Mdp_serve.Engine.create ~config () in
      Mdp_serve.Server.serve_channels ~workers ~queue_cap engine stdin stdout;
      0
  in
  let workers =
    Arg.(
      value & opt int 2
      & info [ "workers" ] ~docv:"N" ~doc:"Worker domains answering requests.")
  in
  let queue_cap =
    Arg.(
      value & opt int 32
      & info [ "queue-cap" ] ~docv:"N"
          ~doc:
            "Admission queue bound; requests beyond it are shed with an \
             $(b,overloaded) response (or a stale cached result when the \
             request sets allow_stale).")
  in
  let cache_cap =
    Arg.(
      value & opt int 64
      & info [ "cache-cap" ] ~docv:"N"
          ~doc:"Rendered-result LRU entries (half as many stale entries).")
  in
  let deadline =
    Arg.(
      value & opt (some int) None
      & info [ "deadline-ms" ] ~docv:"MS"
          ~doc:
            "Default per-request deadline budget applied when a request \
             names none.")
  in
  let soak =
    Arg.(
      value & opt (some int) None
      & info [ "soak" ] ~docv:"REQUESTS"
          ~doc:
            "Run the chaos soak harness with this many generated requests \
             instead of serving; exits non-zero if the resilience contract \
             is violated.")
  in
  let seed =
    Arg.(value & opt int 7 & info [ "seed" ] ~docv:"SEED" ~doc:"Soak workload seed.")
  in
  let fault_rate =
    Arg.(
      value & opt float 0.05
      & info [ "fault-rate" ] ~docv:"P"
          ~doc:"Soak drop/duplicate/reorder/delay probability per line.")
  in
  (* The daemon's guard defaults higher than one-shot generation: the
     packed LTS engine holds millions of states in a few bytes each, and
     a long-lived server is exactly where the large-model headroom
     matters. State-limit responses report the observed bytes/state so
     the ceiling can be tuned against real memory. *)
  let serve_max_states =
    Arg.(
      value
      & opt int Mdp_serve.Engine.default_config.Mdp_serve.Engine.max_states
      & info [ "max-states" ] ~docv:"N"
          ~doc:
            "Ceiling clamped onto per-request max_states; generation past \
             it aborts with a $(b,state_limit) response carrying the \
             observed states, transitions and bytes/state.")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Long-lived analysis daemon: newline-delimited JSON requests on \
          stdin, responses on stdout. See docs/SERVE.md for the protocol.")
    Term.(
      const run $ workers $ queue_cap $ jobs_arg $ cache_cap $ deadline
      $ serve_max_states $ mem_budget_arg $ soak $ seed $ fault_rate
      $ metrics_term)

(* ----- chaos ----- *)

(* Runs the full resilience pipeline (Sim -> Faults -> Enforce ->
   Monitor/Fleet) over a scenario: simulate per-subject traces, perturb
   each through the fault injector, interleave, monitor the faulty
   stream with resynchronisation enabled, checkpoint/restore the fleet
   mid-run and check the alert stream is unchanged, and (when a
   deployment is given) crash a node and retry a write with backoff.
   Exit status is 0 iff no subject ends Lost and the checkpoint
   round-trips exactly. *)

module Chaos = struct
  module R = Mdp_runtime
  module L = Mdp_prelude.Listx

  let feed fleet stream =
    List.iter (fun (s, e) -> ignore (R.Fleet.observe fleet ~subject:s e)) stream

  let count_alerts fleet subjects =
    List.fold_left
      (fun acc s ->
        List.fold_left
          (fun (r, d, o, rs, sk) -> function
            | R.Monitor.Risky _ -> (r + 1, d, o, rs, sk)
            | R.Monitor.Denied _ -> (r, d + 1, o, rs, sk)
            | R.Monitor.Off_model _ -> (r, d, o + 1, rs, sk)
            | R.Monitor.Resynced (_, k) -> (r, d, o, rs + 1, sk + k))
          acc
          (R.Fleet.alerts_for fleet ~subject:s))
      (0, 0, 0, 0, 0) subjects

  let sum_stats fleet subjects =
    List.fold_left
      (fun (dup, late, dead) s ->
        match R.Fleet.monitor_stats fleet ~subject:s with
        | None -> (dup, late, dead)
        | Some st ->
          (dup + st.R.Monitor.duplicates, late + st.late, dead + st.dead))
      (0, 0, 0) subjects

  (* Checkpoint after the prefix, restore into a fresh fleet, replay the
     suffix there; the combined alert stream and final states must match
     the uninterrupted reference run exactly. *)
  let checkpoint_roundtrip u lts ~resync_depth reference prefix suffix =
    let a = R.Fleet.create ~resync_depth u lts in
    feed a prefix;
    match R.Fleet.restore u lts (R.Fleet.checkpoint a) with
    | Error e -> Error e
    | Ok b ->
      feed b suffix;
      let agrees s =
        R.Fleet.alerts_for reference ~subject:s
        = R.Fleet.alerts_for a ~subject:s @ R.Fleet.alerts_for b ~subject:s
        && R.Fleet.state_of reference ~subject:s = R.Fleet.state_of b ~subject:s
      in
      if List.for_all agrees (R.Fleet.subjects reference) then Ok ()
      else Error "restored fleet diverged from the uninterrupted run"

  (* Crash the node hosting [store] and retry a write with bounded
     exponential backoff until the timed outage heals. *)
  let crashed_write u deployment ~seed ~node ~store op_fields ~actor =
    let chaos = R.Faults.chaos ~seed deployment in
    let sim = R.Store_sim.create ~seed u in
    let downtime = 4 in
    R.Faults.crash_node ~for_ticks:downtime chaos node;
    let op () =
      R.Faults.sync_stores chaos sim;
      R.Store_sim.write sim ~actor ~store ~subject:"chaos-demo" op_fields
    in
    let result, outcome = R.Faults.with_backoff chaos op in
    (result, outcome, downtime)

  let run_scenario ~name ~seed ~rate ~subjects ~resync_depth ~services
      ~snoopers ~profile diagram policy backoff_demo =
    match Core.Analysis.run_checked ~profile diagram policy with
    | Error failure ->
      prerr_endline (Core.Analysis.failure_message failure);
      false
    | Ok analysis ->
    let u = analysis.Core.Analysis.universe
    and lts = analysis.Core.Analysis.lts in
    let traces =
      List.init subjects (fun i ->
        ( Printf.sprintf "%s-%02d" name i,
          R.Sim.run_exn u { R.Sim.seed = seed + (31 * i); services; snoopers }
        ))
    in
    let fprofile = R.Faults.uniform rate in
    let injected =
      List.mapi
        (fun i (s, tr) ->
          (s, R.Faults.inject ~seed:(seed + (131 * i)) fprofile tr))
        traces
    in
    let fstats =
      R.Faults.stats
        (List.concat_map (fun (_, inj) -> inj.R.Faults.faults) injected)
    in
    let stream =
      R.Trace.interleave
        (List.map (fun (s, inj) -> (s, inj.R.Faults.delivered)) injected)
    in
    let generated = Mdp_prelude.Listx.sum_by (fun (_, t) -> List.length t) traces in
    Format.printf "@.== chaos: %s (seed %d, fault rate %.0f%%) ==@." name seed
      (100. *. rate);
    Format.printf "  %d subjects, %d events generated, %d delivered (%a)@."
      subjects generated (List.length stream) R.Faults.pp_stats fstats;
    let fleet = R.Fleet.create ~resync_depth u lts in
    feed fleet stream;
    let subject_ids = R.Fleet.subjects fleet in
    let risky, denied, off, resyncs, skipped = count_alerts fleet subject_ids in
    let dup, late, dead = sum_stats fleet subject_ids in
    Format.printf
      "  alerts: %d risky, %d denied, %d off-model, %d resyncs (%d \
       transitions skipped)@."
      risky denied off resyncs skipped;
    Format.printf "  absorbed: %d duplicates, %d late arrivals; dead \
                   letters: %d@."
      dup late dead;
    let healthy, degraded, lost =
      List.fold_left
        (fun (h, d, l) (_, health) ->
          match health with
          | R.Fleet.Healthy -> (h + 1, d, l)
          | R.Fleet.Degraded _ -> (h, d + 1, l)
          | R.Fleet.Lost -> (h, d, l + 1))
        (0, 0, 0) (R.Fleet.health_summary fleet)
    in
    Format.printf "  health: %d healthy / %d degraded / %d lost@." healthy
      degraded lost;
    let mid = List.length stream / 2 in
    let cp_ok =
      match
        checkpoint_roundtrip u lts ~resync_depth fleet (L.take mid stream)
          (L.drop mid stream)
      with
      | Ok () ->
        Format.printf
          "  checkpoint at event %d, restore, replay: alert streams \
           identical@."
          mid;
        true
      | Error e ->
        Format.printf "  checkpoint/restore FAILED: %s@." e;
        false
    in
    let demo_ok =
      match backoff_demo with
      | None -> true
      | Some (deployment, node, store, actor, fields) -> (
        match crashed_write u deployment ~seed ~node ~store fields ~actor with
        | Ok (), outcome, downtime ->
          Format.printf
            "  crash: node %s (hosting %s) down %d ticks; %s write \
             recovered after %d attempts (%d ticks waited)@."
            node store downtime actor outcome.R.Faults.attempts
            outcome.R.Faults.waited;
          true
        | Error e, outcome, downtime ->
          Format.printf
            "  crash: node %s down %d ticks; write still failing after %d \
             attempts: %s@."
            node downtime outcome.R.Faults.attempts e;
          false)
    in
    lost = 0 && cp_ok && demo_ok
end

let chaos_cmd =
  let run model_path seed rate subjects resync_depth metrics =
    with_metrics metrics @@ fun () ->
    let module S = Mdp_scenario in
    let module R = Mdp_runtime in
    let ok =
      match model_path with
      | Some path -> (
        match load_model path with
        | Error (`Msg e) ->
          prerr_endline e;
          false
        | Ok { diagram; policy; _ } ->
          let services =
            List.map
              (fun (s : Mdp_dataflow.Service.t) -> s.id)
              diagram.Mdp_dataflow.Diagram.services
          in
          Chaos.run_scenario ~name:"model" ~seed ~rate ~subjects ~resync_depth
            ~services ~snoopers:[]
            ~profile:(Core.User_profile.make ~agreed_services:services ())
            diagram policy None)
      | None ->
        (* Built-in exercise: the paper's healthcare service (with its
           three-region deployment and a node-crash write retry) plus the
           smart-home scenario, both under the same fault profile. *)
        let healthcare =
          let u =
            Core.Universe.make S.Healthcare.diagram S.Healthcare.policy
          in
          let demo =
            match
              R.Deployment.create
                ~nodes:
                  [
                    { R.Deployment.id = "surgery"; region = "UK" };
                    { R.Deployment.id = "dc-eu"; region = "EU" };
                    { R.Deployment.id = "research-cloud"; region = "US" };
                  ]
                ~actors:
                  [
                    ("Receptionist", "surgery");
                    ("Doctor", "surgery");
                    ("Nurse", "surgery");
                    ("Administrator", "dc-eu");
                    ("Researcher", "research-cloud");
                  ]
                ~stores:
                  [
                    ("Appointments", "surgery");
                    ("EHR", "dc-eu");
                    ("AnonEHR", "research-cloud");
                  ]
                u
            with
            | Error msgs -> failwith (String.concat "\n" msgs)
            | Ok deployment ->
              Some
                ( deployment,
                  "dc-eu",
                  "EHR",
                  "Doctor",
                  [ (S.Healthcare.diagnosis, Mdp_anon.Value.Str "observation") ]
                )
          in
          Chaos.run_scenario ~name:"healthcare" ~seed ~rate ~subjects
            ~resync_depth
            ~services:
              [ S.Healthcare.medical_service; S.Healthcare.research_service ]
            ~snoopers:
              [
                {
                  R.Sim.actor = "Administrator";
                  store = "EHR";
                  probability = 0.3;
                };
              ]
            ~profile:S.Healthcare.profile_case_a S.Healthcare.diagram
            S.Healthcare.policy demo
        in
        let smart_home =
          Chaos.run_scenario ~name:"smart-home" ~seed:(seed + 1) ~rate
            ~subjects ~resync_depth
            ~services:
              [ S.Smart_home.energy_service; S.Smart_home.analytics_service ]
            ~snoopers:
              [
                {
                  R.Sim.actor = "Marketing";
                  store = "Telemetry";
                  probability = 0.3;
                };
              ]
            ~profile:S.Smart_home.profile S.Smart_home.diagram
            S.Smart_home.policy None
        in
        healthcare && smart_home
    in
    if ok then begin
      Format.printf "@.chaos: all monitors recovered@.";
      0
    end
    else begin
      Format.printf "@.chaos: FAILURES detected@.";
      exits_with_error
    end
  in
  let model =
    let doc =
      "Model file to stress instead of the built-in healthcare and \
       smart-home scenarios."
    in
    Arg.(value & pos 0 (some file) None & info [] ~docv:"MODEL" ~doc)
  in
  let seed =
    Arg.(value & opt int 7 & info [ "seed" ] ~docv:"SEED" ~doc:"Chaos seed.")
  in
  let rate =
    Arg.(
      value & opt float 0.05
      & info [ "rate" ] ~docv:"P"
          ~doc:"Per-event drop/duplicate/reorder/delay probability.")
  in
  let subjects =
    Arg.(
      value & opt int 6
      & info [ "subjects" ] ~docv:"N" ~doc:"Data subjects per scenario.")
  in
  let resync_depth =
    Arg.(
      value & opt int 8
      & info [ "resync-depth" ] ~docv:"D"
          ~doc:"Max transitions a monitor resynchronisation may skip.")
  in
  Cmd.v
    (Cmd.info "chaos"
       ~doc:
         "Stress the runtime monitor with fault injection and report \
          alert/recovery statistics.")
    Term.(const run $ model $ seed $ rate $ subjects $ resync_depth $ metrics_term)

let () =
  let info =
    Cmd.info "mdpriv" ~version:"1.0.0"
      ~doc:"Model-driven identification of privacy risks in data services."
  in
  exit
    (Cmd.eval'
       (Cmd.group info
          [ validate_cmd; dot_cmd; lts_cmd; risk_cmd; whatif_cmd; sweep_cmd;
            simulate_cmd; anon_cmd; check_cmd; population_cmd; monitor_cmd;
            transfers_cmd; transparency_cmd; serve_cmd; chaos_cmd ]))
